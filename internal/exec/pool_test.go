package exec_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// poolBackend builds a warm-pool backend over the TestMain-built binary,
// closed automatically at test end. Tests tune the config in-place
// before first use.
func poolBackend(t *testing.T, cfg exec.PoolConfig) *exec.Pool {
	t.Helper()
	if minijvmPath == "" {
		t.Skip("minijvm binary unavailable (-short or build failure)")
	}
	cfg.Path = minijvmPath
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	p := exec.NewPool(cfg)
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPoolMatchesInProcess is the per-execution equivalence table: the
// warm pool — compile cache and all — must reproduce the in-process
// ExecResult exactly, across consecutive executions on the same child.
func TestPoolMatchesInProcess(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{})
	seeds := corpus.DefaultPool(4, 3)
	for _, tc := range []struct {
		name string
		opt  jvm.Options
	}{
		{"xcomp", jvm.Options{ForceCompile: true, MaxSteps: 2_000_000}},
		{"structured-obv", jvm.Options{ForceCompile: true, StructuredOBV: true}},
		{"interp", jvm.Options{PureInterpreter: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range seeds {
				p, err := lang.Parse(seed.Source)
				if err != nil {
					t.Fatal(err)
				}
				want, wantErr := exec.InProcess{}.Execute(context.Background(), lang.CloneProgram(p), hotspot17(), tc.opt)
				got, gotErr := pool.Execute(context.Background(), p, hotspot17(), tc.opt)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: error mismatch: %v vs %v", seed.Name, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("%s: error text diverged: %q vs %q", seed.Name, wantErr, gotErr)
					}
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: backends diverged\n got: %+v\nwant: %+v", seed.Name, got, want)
				}
			}
		})
	}
	if st := pool.Stats(); st.Spawns == 0 || st.Executions == 0 {
		t.Errorf("pool counters empty: %+v", pool.Stats())
	}
}

// TestPoolDifferentialMatchesInProcess: a full differential must ride
// one batch on one warm child and still group exactly like
// jvm.RunDifferential.
func TestPoolDifferentialMatchesInProcess(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{})
	seed := corpus.DefaultPool(1, 9)[0]
	p, err := lang.Parse(seed.Source)
	if err != nil {
		t.Fatal(err)
	}
	opt := jvm.Options{ForceCompile: true, MaxSteps: 2_000_000}
	want, err := exec.InProcess{}.ExecuteDifferential(context.Background(), lang.CloneProgram(p), jvm.AllSpecs(), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.ExecuteDifferential(context.Background(), p, jvm.AllSpecs(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Errorf("groups diverged: %v vs %v", got.Groups, want.Groups)
	}
	for i := range got.Results {
		if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
			t.Errorf("result %d (%s) diverged", i, want.Results[i].Spec.Name())
		}
	}
	st := pool.Stats()
	if n := int64(len(jvm.AllSpecs())); st.SpawnsAvoided != n-1 {
		t.Errorf("SpawnsAvoided = %d, want %d (one spawn for a %d-spec differential)", st.SpawnsAvoided, n-1, n)
	}
	if mb := st.MeanBatch(); mb <= 1 {
		t.Errorf("MeanBatch = %.1f, want > 1 (differential must be batched)", mb)
	}
}

// poolCampaign runs the standing equivalence campaign (differentials
// enabled, so the batched path is exercised inside the engine).
func poolCampaign(t *testing.T, ex exec.Executor, hcfg harness.Config, ctx context.Context) *core.CampaignResult {
	t.Helper()
	cfg := core.DefaultConfig(hotspot17())
	res, err := core.RunCampaignContext(ctx, core.CampaignConfig{
		Seeds:    corpus.DefaultPool(2, 5),
		Budget:   60,
		Fuzz:     cfg,
		Seed:     5,
		Executor: ex,
	}, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertCampaignsIdentical(t *testing.T, label string, got, want *core.CampaignResult) {
	t.Helper()
	if got.Executions != want.Executions || got.SeedsFuzzed != want.SeedsFuzzed {
		t.Errorf("%s: campaign shape diverged: %d/%d executions, %d/%d seeds",
			label, got.Executions, want.Executions, got.SeedsFuzzed, want.SeedsFuzzed)
	}
	if !reflect.DeepEqual(got.FinalDeltas, want.FinalDeltas) {
		t.Errorf("%s: FinalDeltas diverged: %v vs %v", label, got.FinalDeltas, want.FinalDeltas)
	}
	if len(got.Findings) != len(want.Findings) {
		t.Fatalf("%s: finding counts diverged: %d vs %d", label, len(got.Findings), len(want.Findings))
	}
	for i := range got.Findings {
		g, w := got.Findings[i], want.Findings[i]
		if g.Bug.ID != w.Bug.ID || g.Oracle != w.Oracle || g.SeedName != w.SeedName || g.AtExecution != w.AtExecution {
			t.Errorf("%s: finding %d diverged: %+v vs %+v", label, i, g, w)
		}
	}
}

// TestPoolCampaignEquivalence is the three-backend byte-identity
// acceptance test: inprocess ≡ subprocess ≡ pool on the same campaign,
// with differentials enabled so batching is on the hot path.
func TestPoolCampaignEquivalence(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{})
	sub := subprocessBackend(t)
	ctx := context.Background()
	want := poolCampaign(t, nil, harness.Config{}, ctx)
	gotSub := poolCampaign(t, sub, harness.Config{}, ctx)
	gotPool := poolCampaign(t, pool, harness.Config{}, ctx)
	assertCampaignsIdentical(t, "subprocess", gotSub, want)
	assertCampaignsIdentical(t, "pool", gotPool, want)
	if st := pool.Stats(); st.Executions == 0 {
		t.Error("pool recorded no executions — campaign did not go through it")
	}
}

// TestPoolCampaignRecycleEquivalence: with an aggressive recycle budget
// every few executions land on a fresh child, and the campaign must
// still be byte-identical — recycling is invisible to results.
func TestPoolCampaignRecycleEquivalence(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{RecycleAfter: 5})
	ctx := context.Background()
	want := poolCampaign(t, nil, harness.Config{}, ctx)
	got := poolCampaign(t, pool, harness.Config{}, ctx)
	assertCampaignsIdentical(t, "pool-recycling", got, want)
	st := pool.Stats()
	if st.RecycledByCount == 0 {
		t.Errorf("test is vacuous: no recycles at RecycleAfter=5 over %d executions", st.Executions)
	}
	if st.Spawns < 2 {
		t.Errorf("Spawns = %d, want several (recycling must spawn replacements)", st.Spawns)
	}
}

// TestPoolCampaignCheckpointResumeEquivalence: interrupt a pooled
// campaign mid-flight, resume it on a NEW pool (fresh children, cold
// caches), and require the exact result of an uninterrupted in-process
// run.
func TestPoolCampaignCheckpointResumeEquivalence(t *testing.T) {
	if minijvmPath == "" {
		t.Skip("minijvm binary unavailable (-short or build failure)")
	}
	want := poolCampaign(t, nil, harness.Config{}, context.Background())

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool1 := poolBackend(t, exec.PoolConfig{})
	partial := poolCampaign(t, pool1, harness.Config{
		CheckpointPath: ckpt,
		OnTask: func(done int) {
			if done == 1 {
				cancel()
			}
		},
	}, ctx)
	if !partial.Interrupted {
		t.Fatal("cancellation did not mark the result interrupted")
	}
	if partial.Executions >= want.Executions {
		t.Fatalf("partial run executed %d >= %d: nothing left to resume", partial.Executions, want.Executions)
	}
	pool1.Close()

	pool2 := poolBackend(t, exec.PoolConfig{})
	resumed := poolCampaign(t, pool2, harness.Config{CheckpointPath: ckpt, ResumePath: ckpt}, context.Background())
	if !resumed.Resumed {
		t.Error("resumed run not marked Resumed")
	}
	assertCampaignsIdentical(t, "pool-resume", resumed, want)
}

// TestPoolRecycleAfterK pins the execution-budget recycle policy: with
// RecycleAfter=3, ten executions must retire at least two children and
// replace them with fresh PIDs, with every result still correct.
func TestPoolRecycleAfterK(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{RecycleAfter: 3, Children: 1})
	prog := wireTestProg(t)
	want, err := exec.InProcess{}.Execute(context.Background(), lang.CloneProgram(prog), hotspot17(), jvm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for i := 0; i < 10; i++ {
		got, err := pool.Execute(context.Background(), prog, hotspot17(), jvm.Options{})
		if err != nil {
			t.Fatalf("execution %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("execution %d diverged after recycle", i)
		}
		for _, pid := range pool.Pids() {
			pids[pid] = true
		}
	}
	st := pool.Stats()
	if st.RecycledByCount < 2 {
		t.Errorf("RecycledByCount = %d, want >= 2 after 10 executions at RecycleAfter=3", st.RecycledByCount)
	}
	if st.RecycledByMem != 0 {
		t.Errorf("RecycledByMem = %d, want 0 (budget recycles must not count as memory recycles)", st.RecycledByMem)
	}
	if len(pids) < 3 {
		t.Errorf("saw %d distinct child pids, want >= 3 (recycling must spawn fresh children)", len(pids))
	}
}

// TestPoolRecycleOnMemHighWater: a 1-byte high-water mark trips on
// every batch (any live Go heap exceeds it), so each execution must
// retire its child as a memory recycle — and results stay correct.
func TestPoolRecycleOnMemHighWater(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{MaxChildHeapBytes: 1, Children: 1})
	prog := wireTestProg(t)
	for i := 0; i < 3; i++ {
		if _, err := pool.Execute(context.Background(), prog, hotspot17(), jvm.Options{}); err != nil {
			t.Fatalf("execution %d: %v", i, err)
		}
	}
	st := pool.Stats()
	if st.RecycledByMem != 3 {
		t.Errorf("RecycledByMem = %d, want 3 (every batch must trip a 1-byte high-water mark)", st.RecycledByMem)
	}
	if st.Spawns != 3 {
		t.Errorf("Spawns = %d, want 3 (each execution needs a fresh child)", st.Spawns)
	}
}

// TestPoolClassifiesChildPanic: a substrate panic mid-batch is a
// deterministic failure — classified FaultHarness with the child's
// stack, and NOT retried (it would just panic again).
func TestPoolClassifiesChildPanic(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{InjectFault: "panic"})
	_, err := pool.Execute(context.Background(), wireTestProg(t), hotspot17(), jvm.Options{})
	var bf *exec.BackendFault
	if !errors.As(err, &bf) {
		t.Fatalf("want BackendFault, got %v", err)
	}
	if bf.Class != harness.FaultHarness {
		t.Errorf("class = %s, want %s", bf.Class, harness.FaultHarness)
	}
	if f := harness.AsFault(err); f == nil || f.Stack == "" {
		t.Errorf("fault must carry the child's stderr as its stack, got %+v", f)
	}
	st := pool.Stats()
	if st.Faults != 1 {
		t.Errorf("fault counter = %d, want 1", st.Faults)
	}
	if st.Retries != 0 {
		t.Errorf("retries = %d, want 0 — panics are deterministic and must not be retried", st.Retries)
	}
}

// TestPoolClassifiesChildHang: a hung child trips the batch deadline,
// is killed, and classifies FaultTimeout — never retried.
func TestPoolClassifiesChildHang(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{InjectFault: "hang", Timeout: 300 * time.Millisecond})
	start := time.Now()
	_, err := pool.Execute(context.Background(), wireTestProg(t), hotspot17(), jvm.Options{})
	var bf *exec.BackendFault
	if !errors.As(err, &bf) {
		t.Fatalf("want BackendFault, got %v", err)
	}
	if bf.Class != harness.FaultTimeout {
		t.Errorf("class = %s, want %s", bf.Class, harness.FaultTimeout)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("batch deadline took %s to fire", elapsed)
	}
	if st := pool.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d, want 0 — timeouts must not be retried", st.Retries)
	}
}

// TestPoolParentCancellationIsNotAFault mirrors the subprocess rule:
// caller shutdown mid-batch is context.Canceled, not a fault.
func TestPoolParentCancellationIsNotAFault(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{InjectFault: "hang"})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(100 * time.Millisecond); cancel() }()
	_, err := pool.Execute(ctx, wireTestProg(t), hotspot17(), jvm.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if harness.AsFault(err) != nil {
		t.Error("parent shutdown must not be classified as a fault")
	}
}

// TestPoolRetriesKilledChild is the SIGKILL chaos test: kill the warm
// child out from under the pool, and the next execution must succeed
// transparently on a fresh child — one retry, zero faults, identical
// result.
func TestPoolRetriesKilledChild(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{Children: 1})
	prog := wireTestProg(t)
	want, err := pool.Execute(context.Background(), prog, hotspot17(), jvm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pids := pool.Pids()
	if len(pids) != 1 {
		t.Fatalf("want 1 warm child, have pids %v", pids)
	}
	if err := syscall.Kill(pids[0], syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// Give the kernel a moment to reap the pipe so the next write fails.
	time.Sleep(50 * time.Millisecond)

	got, err := pool.Execute(context.Background(), prog, hotspot17(), jvm.Options{})
	if err != nil {
		t.Fatalf("execution after SIGKILL failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("result diverged across a kill-and-recycle")
	}
	st := pool.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
	if st.Faults != 0 {
		t.Errorf("faults = %d, want 0 — a recovered kill is not a fault", st.Faults)
	}
	if next := pool.Pids(); len(next) != 1 || next[0] == pids[0] {
		t.Errorf("pool pids = %v, want one fresh child (old pid %d)", next, pids[0])
	}
}

// TestPoolDieInjectionFaultsAfterRetry: a child that dies abruptly on
// every request (the persistent-SIGKILL shape) gets exactly one retry
// on a fresh child, then faults as a marker-less FaultHarness.
func TestPoolDieInjectionFaultsAfterRetry(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{InjectFault: "die"})
	_, err := pool.Execute(context.Background(), wireTestProg(t), hotspot17(), jvm.Options{})
	var bf *exec.BackendFault
	if !errors.As(err, &bf) {
		t.Fatalf("want BackendFault, got %v", err)
	}
	if bf.Class != harness.FaultHarness {
		t.Errorf("class = %s, want %s", bf.Class, harness.FaultHarness)
	}
	st := pool.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d, want exactly 1", st.Retries)
	}
	if st.Faults != 1 {
		t.Errorf("faults = %d, want 1", st.Faults)
	}
}

// TestPoolCorruptFrameFaultsAfterRetry: a child that corrupts its
// response framing is killed and retried once; persisting corruption
// becomes a FaultHarness, not a hang or a decode crash.
func TestPoolCorruptFrameFaultsAfterRetry(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{InjectFault: "corrupt"})
	_, err := pool.Execute(context.Background(), wireTestProg(t), hotspot17(), jvm.Options{})
	var bf *exec.BackendFault
	if !errors.As(err, &bf) {
		t.Fatalf("want BackendFault, got %v", err)
	}
	if bf.Class != harness.FaultHarness {
		t.Errorf("class = %s, want %s", bf.Class, harness.FaultHarness)
	}
	if st := pool.Stats(); st.Retries != 1 {
		t.Errorf("retries = %d, want exactly 1", st.Retries)
	}
}

// TestPoolCampaignSurvivesBackendFault mirrors the subprocess
// containment test on the pool: per-seed harness faults, no results,
// campaign finishes cleanly.
func TestPoolCampaignSurvivesBackendFault(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{InjectFault: "panic"})
	cfg := core.DefaultConfig(hotspot17())
	cfg.DiffSpecs = nil
	res, err := core.RunCampaignContext(context.Background(), core.CampaignConfig{
		Seeds:    corpus.DefaultPool(2, 1),
		Budget:   50,
		Fuzz:     cfg,
		Seed:     1,
		Executor: pool,
	}, harness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("no faults recorded — pool child deaths were swallowed")
	}
	if res.Executions != 0 || len(res.Findings) != 0 {
		t.Errorf("faulting backend must not produce results: %d execs, %d findings", res.Executions, len(res.Findings))
	}
}

// TestPoolCrashRoundTrip: a simulated JVM crash crosses the batched
// wire intact and is a result, not a backend fault.
func TestPoolCrashRoundTrip(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{})
	p, err := lang.Parse(crashSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := jvm.Options{ForceCompile: true}
	want, err := exec.InProcess{}.Execute(context.Background(), lang.CloneProgram(p), hotspot17(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Crashed() {
		t.Fatal("reproducer no longer crashes in-process")
	}
	got, err := pool.Execute(context.Background(), p, hotspot17(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("crash result diverged\n got: %+v\nwant: %+v", got.Result.Crash, want.Result.Crash)
	}
	if pool.Stats().Faults != 0 {
		t.Error("a simulated crash must not count as a backend fault")
	}
}

// TestPoolCloseUnblocksAndFailsExecutes: Close kills the warm children
// and subsequent Executes fail fast instead of hanging on an empty
// pool.
func TestPoolCloseUnblocksAndFailsExecutes(t *testing.T) {
	pool := poolBackend(t, exec.PoolConfig{Children: 1})
	prog := wireTestProg(t)
	if _, err := pool.Execute(context.Background(), prog, hotspot17(), jvm.Options{}); err != nil {
		t.Fatal(err)
	}
	pids := pool.Pids()
	pool.Close()
	if len(pool.Pids()) != 0 {
		t.Errorf("children still live after Close: %v", pool.Pids())
	}
	if _, err := pool.Execute(context.Background(), prog, hotspot17(), jvm.Options{}); err == nil {
		t.Error("Execute after Close must fail")
	}
	for _, pid := range pids {
		// Signal 0 probes liveness; ESRCH means the child is truly gone.
		if err := syscall.Kill(pid, 0); err == nil {
			t.Errorf("child %d survived Close", pid)
		}
	}
}

// TestSubprocessDifferentialSingleSpawn pins the satellite fix: a
// differential on the plain subprocess backend must use ONE serve-mode
// child for every spec, not one spawn per spec.
func TestSubprocessDifferentialSingleSpawn(t *testing.T) {
	sub := subprocessBackend(t)
	seed := corpus.DefaultPool(1, 9)[0]
	p, err := lang.Parse(seed.Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.ExecuteDifferential(context.Background(), p, jvm.AllSpecs(), jvm.Options{ForceCompile: true}); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	n := int64(len(jvm.AllSpecs()))
	if st.Spawns != 1 {
		t.Errorf("Spawns = %d, want 1 for a %d-spec differential", st.Spawns, n)
	}
	if st.SpawnsAvoided != n-1 {
		t.Errorf("SpawnsAvoided = %d, want %d", st.SpawnsAvoided, n-1)
	}
	if st.Executions != n {
		t.Errorf("Executions = %d, want %d", st.Executions, n)
	}
}
