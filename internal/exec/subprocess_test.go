package exec_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// minijvmPath is the -exec-json binary built by TestMain (or supplied
// via $MINIJVM). Empty means subprocess tests skip.
var minijvmPath string

// TestMain builds cmd/minijvm once for every subprocess test. -short
// skips the build (and with it every test that needs the binary), so
// unit-test runs stay fast.
func TestMain(m *testing.M) {
	flag.Parse()
	if !testing.Short() {
		if p := os.Getenv("MINIJVM"); p != "" {
			minijvmPath = p
		} else {
			dir, err := os.MkdirTemp("", "minijvm")
			if err == nil {
				bin := filepath.Join(dir, "minijvm")
				out, err := osexec.Command("go", "build", "-o", bin, "repro/cmd/minijvm").CombinedOutput()
				if err != nil {
					fmt.Fprintf(os.Stderr, "exec_test: building minijvm failed, subprocess tests will skip: %v\n%s", err, out)
				} else {
					minijvmPath = bin
				}
				defer os.RemoveAll(dir)
			}
		}
	}
	os.Exit(m.Run())
}

func subprocessBackend(t *testing.T) *exec.Subprocess {
	t.Helper()
	if minijvmPath == "" {
		t.Skip("minijvm binary unavailable (-short or build failure)")
	}
	sub := exec.NewSubprocess(minijvmPath)
	sub.Timeout = 30 * time.Second
	return sub
}

func hotspot17() jvm.Spec { return jvm.Spec{Impl: buginject.HotSpot, Version: 17} }

// TestSubprocessMatchesInProcess is the executor-equivalence table
// test: for a spread of programs and options, the subprocess backend
// must reproduce the in-process ExecResult exactly.
func TestSubprocessMatchesInProcess(t *testing.T) {
	sub := subprocessBackend(t)
	seeds := corpus.DefaultPool(4, 3)
	for _, tc := range []struct {
		name string
		opt  jvm.Options
	}{
		{"xcomp", jvm.Options{ForceCompile: true, MaxSteps: 2_000_000}},
		{"structured-obv", jvm.Options{ForceCompile: true, StructuredOBV: true}},
		{"interp", jvm.Options{PureInterpreter: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range seeds {
				p, err := lang.Parse(seed.Source)
				if err != nil {
					t.Fatal(err)
				}
				want, wantErr := exec.InProcess{}.Execute(context.Background(), lang.CloneProgram(p), hotspot17(), tc.opt)
				got, gotErr := sub.Execute(context.Background(), p, hotspot17(), tc.opt)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: error mismatch: %v vs %v", seed.Name, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("%s: error text diverged: %q vs %q", seed.Name, wantErr, gotErr)
					}
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: backends diverged\n got: %+v\nwant: %+v", seed.Name, got, want)
				}
			}
		})
	}
}

func TestSubprocessDifferentialMatchesInProcess(t *testing.T) {
	sub := subprocessBackend(t)
	seed := corpus.DefaultPool(1, 9)[0]
	p, err := lang.Parse(seed.Source)
	if err != nil {
		t.Fatal(err)
	}
	opt := jvm.Options{ForceCompile: true, MaxSteps: 2_000_000}
	want, err := exec.InProcess{}.ExecuteDifferential(context.Background(), lang.CloneProgram(p), jvm.AllSpecs(), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sub.ExecuteDifferential(context.Background(), p, jvm.AllSpecs(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Errorf("groups diverged: %v vs %v", got.Groups, want.Groups)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("result counts diverged: %d vs %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
			t.Errorf("result %d (%s) diverged", i, want.Results[i].Spec.Name())
		}
	}
}

// TestSubprocessCampaignEquivalence runs the same campaign on both
// backends and requires identical findings, deltas, and execution
// counts — the acceptance criterion for the backend refactor.
func TestSubprocessCampaignEquivalence(t *testing.T) {
	sub := subprocessBackend(t)
	campaign := func(ex exec.Executor) *core.CampaignResult {
		cfg := core.DefaultConfig(hotspot17())
		cfg.DiffSpecs = nil
		res, err := core.RunCampaignContext(context.Background(), core.CampaignConfig{
			Seeds:    corpus.DefaultPool(3, 5),
			Budget:   150,
			Fuzz:     cfg,
			Seed:     5,
			Executor: ex,
		}, harness.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := campaign(nil) // in-process default
	got := campaign(sub)

	if got.Executions != want.Executions || got.SeedsFuzzed != want.SeedsFuzzed {
		t.Errorf("campaign shape diverged: %d/%d executions, %d/%d seeds",
			got.Executions, want.Executions, got.SeedsFuzzed, want.SeedsFuzzed)
	}
	if !reflect.DeepEqual(got.FinalDeltas, want.FinalDeltas) {
		t.Errorf("FinalDeltas diverged: %v vs %v", got.FinalDeltas, want.FinalDeltas)
	}
	if len(got.Findings) != len(want.Findings) {
		t.Fatalf("finding counts diverged: %d vs %d", len(got.Findings), len(want.Findings))
	}
	for i := range got.Findings {
		g, w := got.Findings[i], want.Findings[i]
		if g.Bug.ID != w.Bug.ID || g.Oracle != w.Oracle || g.SeedName != w.SeedName || g.AtExecution != w.AtExecution {
			t.Errorf("finding %d diverged: %+v vs %+v", i, g, w)
		}
	}
	if st := sub.Stats(); st.Executions == 0 {
		t.Error("subprocess backend recorded no executions — campaign did not go through it")
	}
}

func TestSubprocessClassifiesChildPanic(t *testing.T) {
	sub := subprocessBackend(t)
	sub.InjectFault = "panic"
	_, err := sub.Execute(context.Background(), wireTestProg(t), hotspot17(), jvm.Options{})
	var bf *exec.BackendFault
	if !errors.As(err, &bf) {
		t.Fatalf("want BackendFault, got %v", err)
	}
	if bf.Class != harness.FaultHarness {
		t.Errorf("class = %s, want %s", bf.Class, harness.FaultHarness)
	}
	if f := harness.AsFault(err); f == nil || f.Stack == "" {
		t.Errorf("fault must carry the child's stderr as its stack, got %+v", f)
	}
	if sub.Stats().Faults != 1 {
		t.Errorf("fault counter = %d, want 1", sub.Stats().Faults)
	}
}

func TestSubprocessClassifiesChildHang(t *testing.T) {
	sub := subprocessBackend(t)
	sub.InjectFault = "hang"
	sub.Timeout = 300 * time.Millisecond
	start := time.Now()
	_, err := sub.Execute(context.Background(), wireTestProg(t), hotspot17(), jvm.Options{})
	var bf *exec.BackendFault
	if !errors.As(err, &bf) {
		t.Fatalf("want BackendFault, got %v", err)
	}
	if bf.Class != harness.FaultTimeout {
		t.Errorf("class = %s, want %s", bf.Class, harness.FaultTimeout)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("watchdog took %s to fire", elapsed)
	}
}

func TestSubprocessParentCancellationIsNotAFault(t *testing.T) {
	sub := subprocessBackend(t)
	sub.InjectFault = "hang"
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(100 * time.Millisecond); cancel() }()
	_, err := sub.Execute(ctx, wireTestProg(t), hotspot17(), jvm.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if harness.AsFault(err) != nil {
		t.Error("parent shutdown must not be classified as a fault")
	}
}

// TestCampaignSurvivesBackendFault pins process-level containment: a
// child that panics on every execution becomes per-seed harness faults;
// the campaign itself finishes cleanly.
func TestCampaignSurvivesBackendFault(t *testing.T) {
	sub := subprocessBackend(t)
	sub.InjectFault = "panic"
	cfg := core.DefaultConfig(hotspot17())
	cfg.DiffSpecs = nil
	res, err := core.RunCampaignContext(context.Background(), core.CampaignConfig{
		Seeds:    corpus.DefaultPool(2, 1),
		Budget:   50,
		Fuzz:     cfg,
		Seed:     1,
		Executor: sub,
	}, harness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("no faults recorded — backend deaths were swallowed")
	}
	for _, f := range res.Faults {
		if f.SeedName == "" {
			t.Errorf("fault missing seed attribution: %+v", f)
		}
	}
	if res.Executions != 0 || len(res.Findings) != 0 {
		t.Errorf("faulting backend must not produce results: %d execs, %d findings", res.Executions, len(res.Findings))
	}
}

// crashSrc deterministically fires JDK-8312744 on openjdk-17 (pinned by
// the jvm package's TestVersionedBugArming).
const crashSrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 1500; i += 1) { total = total + t.foo(i); }
    print(total);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) { acc = acc + k + i; }
    }
    synchronized (this) { acc = acc + this.f; }
    return acc;
  }
}`

// TestSubprocessCrashRoundTrip: a simulated JVM crash is a result, not
// a backend fault — it must cross the wire intact.
func TestSubprocessCrashRoundTrip(t *testing.T) {
	sub := subprocessBackend(t)
	p, err := lang.Parse(crashSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := jvm.Options{ForceCompile: true}
	want, err := exec.InProcess{}.Execute(context.Background(), lang.CloneProgram(p), hotspot17(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Crashed() {
		t.Fatal("reproducer no longer crashes in-process")
	}
	got, err := sub.Execute(context.Background(), p, hotspot17(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("crash result diverged\n got: %+v\nwant: %+v", got.Result.Crash, want.Result.Crash)
	}
	if sub.Stats().Faults != 0 {
		t.Error("a simulated crash must not count as a backend fault")
	}
}

// TestMinijvmExitCodes pins the CLI's per-failure-domain exit codes
// (0 ok, 1 fatal, 2 usage, 3 simulated crash).
func TestMinijvmExitCodes(t *testing.T) {
	if minijvmPath == "" {
		t.Skip("minijvm binary unavailable (-short or build failure)")
	}
	dir := t.TempDir()
	okFile := filepath.Join(dir, "ok.mj")
	if err := os.WriteFile(okFile, []byte("class T { static void main() { print(1); } }"), 0o644); err != nil {
		t.Fatal(err)
	}
	crashFile := filepath.Join(dir, "crash.mj")
	if err := os.WriteFile(crashFile, []byte(crashSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	badFile := filepath.Join(dir, "bad.mj")
	if err := os.WriteFile(badFile, []byte("class Broken {"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"ok", []string{"-log=false", okFile}, 0},
		{"usage-no-args", nil, 2},
		{"usage-extra-args", []string{okFile, okFile}, 2},
		{"fatal-unreadable", []string{filepath.Join(dir, "missing.mj")}, 1},
		{"fatal-parse-error", []string{badFile}, 1},
		{"crash", []string{"-jvm", "openjdk-17", "-log=false", crashFile}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := osexec.Command(minijvmPath, tc.args...).Run()
			code := 0
			var ee *osexec.ExitError
			if errors.As(err, &ee) {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatal(err)
			}
			if code != tc.code {
				t.Errorf("exit code = %d, want %d", code, tc.code)
			}
		})
	}

	// -exec-json with an unusable request exits ExitRequestError.
	cmd := osexec.Command(minijvmPath, "-exec-json")
	cmd.Stdin = strings.NewReader("not json")
	err := cmd.Run()
	var ee *osexec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != exec.ExitRequestError {
		t.Errorf("exec-json garbage request: %v, want exit %d", err, exec.ExitRequestError)
	}
}

func wireTestProg(t *testing.T) *lang.Program {
	t.Helper()
	p, err := lang.Parse(`
class T {
  static void main() {
    print(1);
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
