package exec

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	osexec "os/exec"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// PoolConfig tunes the warm child pool.
type PoolConfig struct {
	// Path is the minijvm binary.
	Path string
	// Timeout is the per-execution wall-clock watchdog. A batch of N
	// executions gets an N×Timeout deadline; when it expires the child
	// is killed and the batch classified FaultTimeout. Zero relies on
	// the caller's context alone.
	Timeout time.Duration
	// Children caps concurrently live children. Zero means GOMAXPROCS —
	// one warm child per worker the parallel engine can keep busy.
	Children int
	// RecycleAfter retires a child after it has served this many
	// executions (fresh one spawned on demand). Zero means 512.
	RecycleAfter int64
	// MaxChildHeapBytes retires a child whose self-reported Go heap
	// (ChildTelemetry.HeapBytes) reaches this high-water mark. Zero
	// means 256 MiB.
	MaxChildHeapBytes uint64
	// InjectFault is forwarded as Request.Inject on every execution — a
	// harness-test seam ("panic", "hang", "die", "corrupt"); production
	// leaves it empty.
	InjectFault string
}

func (c *PoolConfig) children() int {
	if c.Children > 0 {
		return c.Children
	}
	return runtime.GOMAXPROCS(0)
}

func (c *PoolConfig) recycleAfter() int64 {
	if c.RecycleAfter > 0 {
		return c.RecycleAfter
	}
	return 512
}

func (c *PoolConfig) maxHeap() uint64 {
	if c.MaxChildHeapBytes > 0 {
		return c.MaxChildHeapBytes
	}
	return 256 << 20
}

// Pool is the warm-child execution backend: a bounded set of persistent
// `minijvm -exec-serve` children, each handling NDJSON batches of
// executions over its lifetime instead of one execution per spawn. A
// differential rides a single batch (one request per spec, one round
// trip) where the Subprocess backend paid one spawn per spec.
//
// Children are recycled after RecycleAfter executions or when their
// self-reported heap crosses MaxChildHeapBytes, so a leaky substrate
// cannot bloat the fleet. A child dying or hanging mid-batch is
// classified through the same BackendFault taxonomy as the Subprocess
// backend; marker-less deaths (the SIGKILL shape) are retried once on a
// fresh child before faulting, and only the in-flight batch is
// affected. Results are byte-identical to the inprocess and subprocess
// backends — the warm child's compile cache is transparent.
//
// Safe for concurrent use; children() batches proceed in parallel.
type Pool struct {
	cfg PoolConfig

	// slots holds the pool's capacity: each token is either a warm idle
	// child or nil (permission to spawn one). Acquiring blocks when all
	// children are mid-batch, which is exactly the backpressure the
	// parallel engine needs.
	slots chan *poolChild

	mu     sync.Mutex
	closed bool
	live   map[*poolChild]struct{}

	execs         atomic.Int64
	faults        atomic.Int64
	childMicros   atomic.Int64
	spawns        atomic.Int64
	spawnsAvoided atomic.Int64
	batches       atomic.Int64
	recycledCount atomic.Int64
	recycledMem   atomic.Int64
	killed        atomic.Int64
	retries       atomic.Int64
}

// NewPool returns a warm-pool backend driving the given minijvm binary.
// Children spawn lazily on first use.
func NewPool(cfg PoolConfig) *Pool {
	p := &Pool{cfg: cfg, live: map[*poolChild]struct{}{}}
	n := cfg.children()
	p.slots = make(chan *poolChild, n)
	for i := 0; i < n; i++ {
		p.slots <- nil
	}
	return p
}

// Stats returns the counters accumulated so far.
func (p *Pool) Stats() Stats {
	return Stats{
		Executions:      p.execs.Load(),
		Faults:          p.faults.Load(),
		ChildMicros:     p.childMicros.Load(),
		Spawns:          p.spawns.Load(),
		SpawnsAvoided:   p.spawnsAvoided.Load(),
		Batches:         p.batches.Load(),
		RecycledByCount: p.recycledCount.Load(),
		RecycledByMem:   p.recycledMem.Load(),
		Killed:          p.killed.Load(),
		Retries:         p.retries.Load(),
	}
}

// Pids lists the live children's PIDs — a test seam for kill-and-recycle
// chaos (tests SIGKILL a real child mid-campaign and assert identical
// results).
func (p *Pool) Pids() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var pids []int
	for c := range p.live {
		pids = append(pids, c.hello.PID)
	}
	return pids
}

// Close kills every child and fails all future Executes. In-flight
// batches finish (their slots are simply never restocked).
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	// Kill every idle child, restocking a nil for each token drained so
	// capacity is conserved and any goroutine blocked on acquire wakes
	// up to see the closed flag instead of waiting forever. Children
	// held by in-flight batches are retired by their holders when they
	// observe closed at restock time.
	for i := 0; i < cap(p.slots); i++ {
		select {
		case c := <-p.slots:
			if c != nil {
				p.retire(c, true)
			}
			p.slots <- nil
		default:
		}
	}
	return nil
}

// Execute implements Executor: a batch of one.
func (p *Pool) Execute(ctx context.Context, prog *lang.Program, spec jvm.Spec, opt jvm.Options) (*jvm.ExecResult, error) {
	req, err := NewRequest(prog, spec, opt)
	if err != nil {
		return nil, err
	}
	req.Inject = p.cfg.InjectFault
	resps, err := p.runBatch(ctx, []*Request{req})
	if err != nil {
		return nil, err
	}
	return handleResponse(resps[0], spec, opt)
}

// ExecuteDifferential implements Executor: the whole differential — one
// request per spec — rides a single batch round trip on one warm child,
// where the Subprocess backend spawned one child per spec.
func (p *Pool) ExecuteDifferential(ctx context.Context, prog *lang.Program, specs []jvm.Spec, opt jvm.Options) (*jvm.Differential, error) {
	reqs := make([]*Request, 0, len(specs))
	for _, spec := range specs {
		req, err := NewRequest(prog, spec, opt)
		if err != nil {
			return nil, err
		}
		req.Inject = p.cfg.InjectFault
		reqs = append(reqs, req)
	}
	resps, err := p.runBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	d := &jvm.Differential{Groups: map[string][]jvm.Spec{}}
	for i, spec := range specs {
		r, err := handleResponse(resps[i], spec, opt)
		if err != nil {
			return nil, err
		}
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], spec)
	}
	return d, nil
}

// ExecutePlanDifferential implements Executor: one spec, one request per
// plan, all riding a single batch round trip on one warm child. Grouping
// matches jvm.RunPlanDifferential exactly.
func (p *Pool) ExecutePlanDifferential(ctx context.Context, prog *lang.Program, spec jvm.Spec, plans []*jit.Plan, opt jvm.Options) (*jvm.Differential, error) {
	reqs := make([]*Request, 0, len(plans))
	for _, plan := range plans {
		o := opt
		o.Plan = plan
		req, err := NewRequest(prog, spec, o)
		if err != nil {
			return nil, err
		}
		req.Inject = p.cfg.InjectFault
		reqs = append(reqs, req)
	}
	resps, err := p.runBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	d := &jvm.Differential{Groups: map[string][]jvm.Spec{}}
	for i, plan := range plans {
		r, err := handleResponse(resps[i], spec, opt)
		if err != nil {
			return nil, err
		}
		r.PlanID = jit.PlanID(plan)
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], spec)
	}
	return d, nil
}

// runBatch pushes one batch through a pooled child, retrying once on a
// fresh child for marker-less deaths (SIGKILL shape, corrupt frames,
// spawn races). Deterministic failures — deadline expiry, substrate
// panics — are never retried, matching the Subprocess backend's
// classification exactly.
func (p *Pool) runBatch(ctx context.Context, reqs []*Request) ([]*Response, error) {
	for attempt := 0; ; attempt++ {
		resps, retryable, err := p.tryBatch(ctx, reqs)
		if err == nil {
			return resps, nil
		}
		if retryable && attempt == 0 && ctx.Err() == nil {
			p.retries.Add(1)
			continue
		}
		if _, ok := err.(*BackendFault); ok {
			p.faults.Add(1)
		}
		return nil, err
	}
}

// tryBatch is one attempt: acquire a slot, warm or spawn a child, do the
// round trip, recycle or restock. The returned bool reports whether the
// failure is retryable on a fresh child.
func (p *Pool) tryBatch(ctx context.Context, reqs []*Request) ([]*Response, bool, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, false, errors.New("exec: pool is closed")
	}
	var c *poolChild
	select {
	case c = <-p.slots:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	p.mu.Lock()
	closed = p.closed
	p.mu.Unlock()
	if closed {
		if c != nil {
			p.retire(c, true)
		}
		p.slots <- nil // keep other waiters unblocked; they'll see closed too
		return nil, false, errors.New("exec: pool is closed")
	}

	spawned := false
	if c == nil {
		var err error
		c, err = spawnChild(p.cfg.Path)
		if err != nil {
			p.slots <- nil
			// Spawn failures are environmental (fd pressure, races with
			// recycling) — worth one retry.
			return nil, true, err
		}
		spawned = true
		p.spawns.Add(1)
		p.mu.Lock()
		p.live[c] = struct{}{}
		p.mu.Unlock()
	}

	if bf := planVersionFault(c.hello, reqs); bf != nil {
		// The child is healthy, just too old for plans — restock it warm
		// for plan-free traffic. Deterministic for this binary: never
		// retried (tryBatch reports it non-retryable).
		p.restock(c)
		return nil, false, bf
	}
	v := negotiateVersion(c.hello, reqs)

	deadline := time.Duration(0)
	if p.cfg.Timeout > 0 {
		deadline = p.cfg.Timeout * time.Duration(len(reqs))
	}
	resp, timedOut, err := c.roundTrip(ctx, deadline, &BatchRequest{Version: v, Requests: reqs})
	if err != nil {
		p.retire(c, true)
		p.slots <- nil
		classified := classifyServeFailure(ctx, timedOut, deadline, c, err)
		var bf *BackendFault
		retryable := errors.As(classified, &bf) && bf.Class == harness.FaultHarness && !bf.panicked
		return nil, retryable, classified
	}
	if len(resp.Responses) != len(reqs) {
		p.retire(c, true)
		p.slots <- nil
		return nil, true, &BackendFault{
			Class:   harness.FaultHarness,
			Message: fmt.Sprintf("minijvm child answered %d of %d batched executions", len(resp.Responses), len(reqs)),
		}
	}

	p.execs.Add(int64(len(reqs)))
	p.batches.Add(1)
	avoided := int64(len(reqs))
	if spawned {
		avoided--
	}
	p.spawnsAvoided.Add(avoided)
	for _, r := range resp.Responses {
		p.childMicros.Add(r.Timings.TotalMicros)
	}

	// Recycle policy: telemetry decides whether this child goes back in
	// the pool warm or retires. Either way a slot is restocked, so
	// capacity is conserved.
	switch {
	case resp.Telemetry.Executions >= p.cfg.recycleAfter():
		p.recycledCount.Add(1)
		p.retire(c, false)
		p.slots <- nil
	case resp.Telemetry.HeapBytes >= p.cfg.maxHeap():
		p.recycledMem.Add(1)
		p.retire(c, false)
		p.slots <- nil
	default:
		p.restock(c)
	}
	return resp.Responses, false, nil
}

// restock returns a healthy child to the pool warm. It happens under the
// lock so a concurrent Close either sees this child in the channel (and
// kills it during its drain) or we see closed here and retire it
// ourselves — no leaked warm child.
func (p *Pool) restock(c *poolChild) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.retire(c, true)
	} else {
		p.slots <- c
		p.mu.Unlock()
	}
}

// retire removes a child from the live set and shuts it down: gracefully
// (close stdin, let the serve loop exit) for planned recycling, or by
// force for failures and Close.
func (p *Pool) retire(c *poolChild, force bool) {
	p.mu.Lock()
	delete(p.live, c)
	p.mu.Unlock()
	if c.shutdown(force) {
		p.killed.Add(1)
	}
}

// poolChild is one live `minijvm -exec-serve` process.
type poolChild struct {
	cmd    *osexec.Cmd
	stdin  io.WriteCloser
	out    *bufio.Reader
	stderr *bytes.Buffer
	hello  ServerHello

	waitOnce sync.Once
	waitErr  error
}

// spawnChild starts a serve-mode child and completes the hello
// handshake, enforcing version-range overlap.
func spawnChild(path string) (*poolChild, error) {
	cmd := osexec.Command(path, "-exec-serve")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("exec: pool stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("exec: pool stdout: %w", err)
	}
	c := &poolChild{cmd: cmd, stdin: stdin, out: bufio.NewReaderSize(stdout, 1<<20), stderr: &bytes.Buffer{}}
	cmd.Stderr = c.stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("exec: spawn minijvm serve child: %w", err)
	}
	line, err := readLineTimeout(c.out, 30*time.Second)
	if err != nil {
		c.shutdown(true)
		return nil, fmt.Errorf("exec: serve child hello: %w", err)
	}
	if err := json.Unmarshal(line, &c.hello); err != nil {
		c.shutdown(true)
		return nil, fmt.Errorf("exec: serve child hello: %w", err)
	}
	if !c.hello.Compatible() {
		c.shutdown(true)
		return nil, fmt.Errorf("exec: serve child speaks wire %d..%d, parent speaks %d..%d (rebuild the binary)",
			c.hello.MinVersion, c.hello.Version, MinWireVersion, WireVersion)
	}
	return c, nil
}

// roundTrip writes one batch frame and reads one response frame,
// enforcing the deadline by killing the child (which unblocks both pipe
// operations). timedOut reports a deadline kill as opposed to a child
// failure.
func (c *poolChild) roundTrip(ctx context.Context, deadline time.Duration, batch *BatchRequest) (resp *BatchResponse, timedOut bool, err error) {
	frame, err := json.Marshal(batch)
	if err != nil {
		return nil, false, fmt.Errorf("exec: encode batch: %w", err)
	}
	frame = append(frame, '\n')

	type outcome struct {
		resp *BatchResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		if _, werr := c.stdin.Write(frame); werr != nil {
			done <- outcome{err: fmt.Errorf("write batch: %w", werr)}
			return
		}
		line, rerr := c.out.ReadBytes('\n')
		if rerr != nil {
			done <- outcome{err: fmt.Errorf("read batch response: %w", rerr)}
			return
		}
		var br BatchResponse
		if uerr := json.Unmarshal(line, &br); uerr != nil {
			done <- outcome{err: fmt.Errorf("corrupt batch frame: %w", uerr)}
			return
		}
		if br.Version < MinWireVersion || br.Version > WireVersion {
			done <- outcome{err: fmt.Errorf("batch response wire version %d", br.Version)}
			return
		}
		done <- outcome{resp: &br}
	}()

	var timer <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		timer = t.C
	}
	select {
	case o := <-done:
		return o.resp, false, o.err
	case <-timer:
		c.cmd.Process.Kill()
		<-done // join: the pipe ops unblock once the child dies
		return nil, true, errors.New("batch deadline exceeded")
	case <-ctx.Done():
		c.cmd.Process.Kill()
		<-done
		return nil, false, ctx.Err()
	}
}

// shutdown ends the child: force kills immediately; graceful closes
// stdin so the serve loop exits on EOF, escalating to a kill if the
// child lingers. Reports whether a kill was needed. Idempotent.
func (c *poolChild) shutdown(force bool) (killed bool) {
	c.stdin.Close()
	if force {
		c.cmd.Process.Kill()
		killed = true
		c.wait()
		return killed
	}
	exited := make(chan struct{})
	go func() { c.wait(); close(exited) }()
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		c.cmd.Process.Kill()
		killed = true
		<-exited
	}
	return killed
}

func (c *poolChild) wait() {
	c.waitOnce.Do(func() { c.waitErr = c.cmd.Wait() })
}

// exitCode is the child's exit status; valid only after death.
func (c *poolChild) exitCode() int {
	c.wait()
	var ee *osexec.ExitError
	if errors.As(c.waitErr, &ee) {
		return ee.ExitCode()
	}
	return 0
}

// stderrText snapshots the child's stderr; the buffer is only safe to
// read after the process has been waited on.
func (c *poolChild) stderrText() string {
	c.wait()
	return c.stderr.String()
}

// readLineTimeout reads one line with a wall-clock bound — used for the
// hello handshake, before the per-batch deadline machinery applies.
func readLineTimeout(r *bufio.Reader, d time.Duration) ([]byte, error) {
	type res struct {
		line []byte
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		line, err := r.ReadBytes('\n')
		ch <- res{line, err}
	}()
	select {
	case x := <-ch:
		return x.line, x.err
	case <-time.After(d):
		return nil, errors.New("timed out")
	}
}
