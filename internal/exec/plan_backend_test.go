package exec_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
)

// TestPlanDifferentialBackendEquivalence: the plan-vs-plan oracle must
// produce byte-identical differentials on all three backends — same
// groups, same per-plan results, same PlanID provenance — so campaign
// findings do not depend on how executions are dispatched.
func TestPlanDifferentialBackendEquivalence(t *testing.T) {
	sub := subprocessBackend(t)
	pool := poolBackend(t, exec.PoolConfig{})

	seed := corpus.DefaultPool(1, 9)[0]
	p, err := lang.Parse(seed.Source)
	if err != nil {
		t.Fatal(err)
	}
	plans := []*jit.Plan{
		nil,
		jit.GeneratePlan(1, jit.PlanFull),
		jit.GeneratePlan(2, jit.PlanFull),
		jit.GeneratePlan(3, jit.PlanMinimal),
	}
	opt := jvm.Options{ForceCompile: true, MaxSteps: 2_000_000}

	want, err := exec.InProcess{}.ExecutePlanDifferential(
		context.Background(), lang.CloneProgram(p), hotspot17(), plans, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Results) != len(plans) {
		t.Fatalf("in-process produced %d results for %d plans", len(want.Results), len(plans))
	}

	for _, backend := range []struct {
		name string
		ex   exec.Executor
	}{{"subprocess", sub}, {"pool", pool}} {
		t.Run(backend.name, func(t *testing.T) {
			got, err := backend.ex.ExecutePlanDifferential(
				context.Background(), lang.CloneProgram(p), hotspot17(), plans, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Groups, want.Groups) {
				t.Errorf("groups diverged: %v vs %v", got.Groups, want.Groups)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("result counts diverged: %d vs %d", len(got.Results), len(want.Results))
			}
			for i := range got.Results {
				if got.Results[i].PlanID != jit.PlanID(plans[i]) {
					t.Errorf("result %d PlanID = %q, want %q", i, got.Results[i].PlanID, jit.PlanID(plans[i]))
				}
				if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
					t.Errorf("result %d (plan %s) diverged", i, want.Results[i].PlanID)
				}
			}
		})
	}
}
