// Package jvm composes the substrate into named, versioned JVM
// implementations: each Spec pairs an implementation (HotSpot-sim or
// OpenJ9-sim) and a release train (LTS 8/11/17/21 or mainline 23) with
// that version's seeded bug set and tuning. Running a program on several
// specs and comparing outputs is the paper's differential-testing oracle.
package jvm

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"repro/internal/buginject"
	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/jit"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// Spec identifies one simulated JVM build.
type Spec struct {
	Impl    buginject.Impl
	Version int // 8, 11, 17, 21, or 23 (mainline)
}

// Name renders the spec like a JDK build string.
func (s Spec) Name() string {
	v := fmt.Sprintf("%d", s.Version)
	if s.Version == 23 {
		v = "mainline"
	}
	if s.Impl == buginject.OpenJ9 {
		return "openj9-" + v
	}
	return "openjdk-" + v
}

// HotSpotLTSAndMainline returns the OpenJDK test targets (§4.1).
func HotSpotLTSAndMainline() []Spec {
	return []Spec{
		{buginject.HotSpot, 8}, {buginject.HotSpot, 11}, {buginject.HotSpot, 17},
		{buginject.HotSpot, 21}, {buginject.HotSpot, 23},
	}
}

// OpenJ9LTSAndMainline returns the OpenJ9 test targets.
func OpenJ9LTSAndMainline() []Spec {
	return []Spec{
		{buginject.OpenJ9, 8}, {buginject.OpenJ9, 11}, {buginject.OpenJ9, 17},
		{buginject.OpenJ9, 21}, {buginject.OpenJ9, 23},
	}
}

// AllSpecs returns every differential-testing target.
func AllSpecs() []Spec {
	return append(HotSpotLTSAndMainline(), OpenJ9LTSAndMainline()...)
}

// Reference is the spec differential runs treat as the primary target
// (latest HotSpot mainline).
func Reference() Spec { return Spec{buginject.HotSpot, 23} }

// ParseSpec parses a JDK build string as rendered by Spec.Name —
// "openjdk-17", "openj9-11", "openjdk-mainline" — the format the CLIs
// and the execution-backend wire protocol use.
func ParseSpec(s string) (Spec, error) {
	impl := buginject.HotSpot
	rest := s
	switch {
	case strings.HasPrefix(s, "openjdk-"):
		rest = strings.TrimPrefix(s, "openjdk-")
	case strings.HasPrefix(s, "openj9-"):
		impl = buginject.OpenJ9
		rest = strings.TrimPrefix(s, "openj9-")
	default:
		return Spec{}, fmt.Errorf("jvm: unknown JVM %q", s)
	}
	switch rest {
	case "8", "11", "17", "21":
		v, _ := strconv.Atoi(rest)
		return Spec{Impl: impl, Version: v}, nil
	case "mainline", "23":
		return Spec{Impl: impl, Version: 23}, nil
	}
	return Spec{}, fmt.Errorf("jvm: unknown version %q", rest)
}

// Options tunes one execution.
type Options struct {
	// Flags selects the diagnostic flags; nil means no profile data.
	Flags profile.FlagSet
	// Coverage, when non-nil, accumulates VM line coverage.
	Coverage *coverage.Tracker
	// ForceCompile mirrors -Xcomp: aggressive tier thresholds so the
	// target methods compile within short fuzzing runs.
	ForceCompile bool
	// CompileOnly mirrors -XX:CompileCommand=compileonly,C::m: when
	// non-empty only this method ("Class.method") is JIT compiled. The
	// paper's OBV-construction setting (§4.1).
	CompileOnly string
	// MaxSteps bounds execution (0 = machine default).
	MaxSteps int64
	// MaxHeapUnits bounds cumulative heap allocation (0 = machine
	// default, negative = uncapped) — the -Xmx analogue of MaxSteps.
	MaxHeapUnits int64
	// PureInterpreter disables the JIT entirely (reference semantics).
	PureInterpreter bool
	// Bugs overrides the spec's armed bug set when non-nil (ablations).
	Bugs []*buginject.Bug
	// CompileHook, when non-nil, observes every compilation event
	// alongside the spec's bug injector (chained after it). The fault-
	// containment tests use it to inject panicking passes; production
	// runs leave it nil.
	CompileHook jit.Hook
	// StructuredOBV selects the fast profile path: passes maintain the
	// behavior counters directly and no log text is ever built, so
	// ExecResult.Log stays empty and ExecResult.OBV comes from the
	// counters. Equivalence with the regex-over-log reference oracle is
	// pinned by TestStructuredOBVMatchesExtract.
	StructuredOBV bool
	// CompileCache, when non-nil, reuses method compilations across
	// executions — and across differential targets, since the cache key
	// covers the program, method, tier, pipeline options, armed bug
	// state, compilation plan, and deopt count. Ignored when CompileHook
	// is set (arbitrary hooks cannot be fingerprinted).
	CompileCache *jit.Cache
	// Plan, when non-nil, overrides the JIT's pass schedule for every
	// compilation in this execution (nil = the fixed default pipeline).
	// The plan is validated once here, so an ill-formed plan is a
	// program-level rejection, not a compile bailout. Serializable: it
	// crosses the exec wire protocol (v3+) to subprocess backends.
	Plan *jit.Plan
}

// ExecResult is one program execution on one spec.
type ExecResult struct {
	Spec      Spec
	Result    *vm.Result
	Log       string
	OBV       profile.OBV
	Triggered []*buginject.Bug
	Compiled  int // number of method compilations observed
	// PlanID names the compilation plan this run executed under. Only
	// the plan-differential driver populates it ("default" or a plan
	// ShortID); spec-differential and single runs leave it empty.
	PlanID string
}

// Crashed reports whether the run ended in a JVM crash.
func (r *ExecResult) Crashed() bool { return r.Result.Crashed() }

// HsErr renders the crash report (empty when no crash).
func (r *ExecResult) HsErr() string {
	if r.Result.Crash == nil {
		return ""
	}
	return r.Result.Crash.HsErrReport(r.Spec.Name())
}

// Run type-checks, compiles, verifies, and executes the program on the
// given simulated JVM. Program-level errors (unparseable, ill-typed)
// return an error; JVM-level outcomes (crash, exception, timeout) are in
// the ExecResult.
func Run(p *lang.Program, spec Spec, opt Options) (*ExecResult, error) {
	if err := lang.Check(p); err != nil {
		return nil, fmt.Errorf("jvm: program rejected: %w", err)
	}
	if opt.Plan != nil {
		if err := opt.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("jvm: plan rejected: %w", err)
		}
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		return nil, fmt.Errorf("jvm: compile: %w", err)
	}
	if err := bytecode.Verify(img); err != nil {
		return nil, fmt.Errorf("jvm: verify: %w", err)
	}

	rec := profile.NewRecorder(opt.Flags)
	if opt.StructuredOBV {
		rec = profile.NewCounterRecorder(opt.Flags)
	}
	cov := opt.Coverage
	if cov == nil {
		cov = coverage.NewTracker()
	}

	cfg := vm.Config{MaxSteps: opt.MaxSteps, MaxHeapUnits: opt.MaxHeapUnits, Trace: cov.Hit, CompileOnly: opt.CompileOnly}
	if opt.ForceCompile {
		cfg.CompileEager = true
	}
	var inj *buginject.Injector
	compiled := 0
	if !opt.PureInterpreter {
		if opt.Bugs != nil {
			inj = buginject.NewInjectorFor(opt.Bugs)
		} else {
			inj = buginject.NewInjector(spec.Impl, spec.Version)
		}
		var hook jit.Hook = inj
		if opt.CompileHook != nil {
			hook = jit.ChainHooks(inj, opt.CompileHook)
		}
		comp := jit.New(rec, cov, hook)
		if spec.Impl == buginject.OpenJ9 {
			// The J9-sim compiler tunes differently: a larger inline
			// budget and slightly later speculation.
			comp.Opt.InlineBudgetC2 = 96
			comp.Opt.TrapLimit = 3
		}
		comp.Plan = opt.Plan
		comp.OnCompiled = func(*jit.Context) { compiled++ }
		if opt.CompileCache != nil && opt.CompileHook == nil {
			comp.Cache = opt.CompileCache
			comp.CacheSalt = programFingerprint(p)
		}
		cfg.JIT = comp
	}

	res := vm.NewMachine(img, cfg).Run()
	out := &ExecResult{
		Spec:     spec,
		Result:   res,
		Compiled: compiled,
	}
	if opt.StructuredOBV {
		out.OBV = rec.OBV()
	} else if rec.Len() > 0 {
		// Executions with no flags enabled (differential re-runs) emit no
		// lines; skip both the log join and the 19-rule regex scan.
		out.Log = rec.Text()
		out.OBV = profile.ExtractOBV(out.Log)
	}
	if inj != nil {
		out.Triggered = inj.Triggered
	}
	return out, nil
}

// programFingerprint hashes the program's canonical source rendering —
// the compile cache's identity for "same program". Computed once per
// execution, only when a cache is attached.
func programFingerprint(p *lang.Program) string {
	h := fnv.New64a()
	io.WriteString(h, lang.Format(p))
	return strconv.FormatUint(h.Sum64(), 16)
}

// RunSource parses src and runs it (convenience for tools and examples).
func RunSource(src string, spec Spec, opt Options) (*ExecResult, error) {
	p, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(p, spec, opt)
}

// Differential runs the program on every spec and reports the distinct
// output groups. A single group means all implementations agree.
type Differential struct {
	Results []*ExecResult
	Groups  map[string][]Spec // output string -> specs producing it
}

// RunDifferential executes p on all the given specs.
func RunDifferential(p *lang.Program, specs []Spec, opt Options) (*Differential, error) {
	d := &Differential{Groups: map[string][]Spec{}}
	for _, spec := range specs {
		// Each run needs a fresh program instance: Check mutates the AST
		// (type annotations) but execution does not; cloning keeps runs
		// hermetic anyway.
		r, err := Run(lang.CloneProgram(p), spec, opt)
		if err != nil {
			return nil, err
		}
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], spec)
	}
	return d, nil
}

// RunPlanDifferential is the plan-vs-plan oracle: it executes p on ONE
// spec under every given compilation plan (a nil entry is the fixed
// default pipeline) and groups the outputs. Where the spec differential
// varies the implementation and holds the pipeline constant, this holds
// the implementation constant and varies the pass schedule — any
// disagreement is an ordering- or phase-sensitivity miscompilation on
// that single build, a bug class the fixed schedule cannot exhibit.
func RunPlanDifferential(p *lang.Program, spec Spec, plans []*jit.Plan, opt Options) (*Differential, error) {
	d := &Differential{Groups: map[string][]Spec{}}
	for _, plan := range plans {
		o := opt
		o.Plan = plan
		r, err := Run(lang.CloneProgram(p), spec, o)
		if err != nil {
			return nil, err
		}
		r.PlanID = jit.PlanID(plan)
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], spec)
	}
	return d, nil
}

// Inconsistent reports whether the specs disagree on the output.
func (d *Differential) Inconsistent() bool { return len(d.Groups) > 1 }

// Divergence pinpoints a differential inconsistency: the spec carrying
// the modal (majority) output, the first spec in run order whose output
// differs from it, and that spec's index in Results. Triage signatures
// use the pair and index as the divergence site of a miscompilation.
// For plan differentials (one spec, many plans) the spec pair is
// degenerate and ModalPlan/DivergentPlan carry the plan identities
// instead; spec differentials leave them empty, so existing
// serializations are byte-identical.
type Divergence struct {
	Modal         Spec   `json:"modal"`
	Divergent     Spec   `json:"divergent"`
	Index         int    `json:"index"`
	ModalPlan     string `json:"modal_plan,omitempty"`
	DivergentPlan string `json:"divergent_plan,omitempty"`
}

// FirstDivergence locates the first diverging result, or nil when all
// specs agree. Unlike iterating Groups (a map), it scans Results in run
// order, so the answer is deterministic: the modal output is the most
// common one with ties broken by first appearance, and the divergent
// spec is the earliest result whose output differs from it.
func (d *Differential) FirstDivergence() *Divergence {
	if !d.Inconsistent() {
		return nil
	}
	counts := map[string]int{}
	for _, r := range d.Results {
		counts[r.Result.OutputString()]++
	}
	modal, best := "", -1
	for _, r := range d.Results {
		if out := r.Result.OutputString(); counts[out] > best {
			best, modal = counts[out], out
		}
	}
	div := &Divergence{Index: -1}
	for i, r := range d.Results {
		if r.Result.OutputString() == modal {
			if div.Modal == (Spec{}) {
				div.Modal = r.Spec
				div.ModalPlan = r.PlanID
			}
		} else if div.Index < 0 {
			div.Divergent, div.Index = r.Spec, i
			div.DivergentPlan = r.PlanID
		}
	}
	return div
}

// AnyCrash returns the first crashing result, or nil.
func (d *Differential) AnyCrash() *ExecResult {
	for _, r := range d.Results {
		if r.Crashed() {
			return r
		}
	}
	return nil
}

// TriggeredBugs returns the union of bugs triggered across all runs.
func (d *Differential) TriggeredBugs() []*buginject.Bug {
	seen := map[string]bool{}
	var out []*buginject.Bug
	for _, r := range d.Results {
		for _, b := range r.Triggered {
			if !seen[b.ID] {
				seen[b.ID] = true
				out = append(out, b)
			}
		}
	}
	return out
}

// DivergentBugs attributes the inconsistency: it returns the
// miscompilation bugs triggered on builds whose output differs from the
// modal (most common) output. Bugs that fired on agreeing builds did not
// cause the divergence and are excluded — differential testing only
// ever reveals the defect that actually changed the output.
func (d *Differential) DivergentBugs() []*buginject.Bug {
	if !d.Inconsistent() {
		return nil
	}
	modal := ""
	best := -1
	for out, specs := range d.Groups {
		if len(specs) > best {
			best = len(specs)
			modal = out
		}
	}
	seen := map[string]bool{}
	var out []*buginject.Bug
	for _, r := range d.Results {
		if r.Result.OutputString() == modal {
			continue
		}
		for _, b := range r.Triggered {
			if b.Kind == buginject.Miscompile && !seen[b.ID] {
				seen[b.ID] = true
				out = append(out, b)
			}
		}
	}
	return out
}
