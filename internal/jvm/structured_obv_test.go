package jvm

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/jit"
	"repro/internal/profile"
)

func runOpts() Options {
	return Options{Flags: profile.DefaultFlags(), ForceCompile: true, MaxSteps: 3_000_000}
}

// assertRunsEquivalent compares everything about two executions except
// the raw log text: program semantics, crash/bug state, OBV, and the
// execution-shape counters that the fuzzer's oracles read.
func assertRunsEquivalent(t *testing.T, label string, want, got *ExecResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Result.Output, want.Result.Output) {
		t.Errorf("%s: output %v, want %v", label, got.Result.Output, want.Result.Output)
	}
	if (got.Result.Exception == nil) != (want.Result.Exception == nil) ||
		(got.Result.Crash == nil) != (want.Result.Crash == nil) {
		t.Errorf("%s: exception/crash state diverged", label)
	}
	if got.OBV != want.OBV {
		t.Errorf("%s: OBV %v, want %v", label, got.OBV, want.OBV)
	}
	if got.Compiled != want.Compiled {
		t.Errorf("%s: Compiled = %d, want %d", label, got.Compiled, want.Compiled)
	}
	if got.Result.Steps != want.Result.Steps || got.Result.Deopts != want.Result.Deopts ||
		got.Result.AllocCount != want.Result.AllocCount {
		t.Errorf("%s: steps/deopts/allocs = %d/%d/%d, want %d/%d/%d", label,
			got.Result.Steps, got.Result.Deopts, got.Result.AllocCount,
			want.Result.Steps, want.Result.Deopts, want.Result.AllocCount)
	}
	if !reflect.DeepEqual(got.Result.Tiers, want.Result.Tiers) {
		t.Errorf("%s: tiers %v, want %v", label, got.Result.Tiers, want.Result.Tiers)
	}
	if len(got.Triggered) != len(want.Triggered) {
		t.Fatalf("%s: Triggered len = %d, want %d", label, len(got.Triggered), len(want.Triggered))
	}
	for i := range want.Triggered {
		if got.Triggered[i].ID != want.Triggered[i].ID {
			t.Errorf("%s: Triggered[%d] = %s, want %s", label, i, got.Triggered[i].ID, want.Triggered[i].ID)
		}
	}
}

// TestStructuredOBVMatchesExtract is the fast-path acceptance test: for
// every corpus seed on every differential target, the structured
// counters must equal the reference regex extraction over the full
// profile log, with identical program semantics — and the fast path
// must not build log text at all.
func TestStructuredOBVMatchesExtract(t *testing.T) {
	seeds := corpus.DefaultPool(12, 9)
	for _, spec := range AllSpecs() {
		for _, seed := range seeds {
			ref, err := Run(seed.Parse(), spec, runOpts())
			if err != nil {
				t.Fatalf("%s %s: reference run: %v", spec.Name(), seed.Name, err)
			}
			if ref.OBV != profile.ExtractOBV(ref.Log) {
				t.Fatalf("%s %s: reference OBV does not match its own log", spec.Name(), seed.Name)
			}
			opt := runOpts()
			opt.StructuredOBV = true
			fast, err := Run(seed.Parse(), spec, opt)
			if err != nil {
				t.Fatalf("%s %s: structured run: %v", spec.Name(), seed.Name, err)
			}
			assertRunsEquivalent(t, spec.Name()+"/"+seed.Name, ref, fast)
			if fast.Log != "" {
				t.Errorf("%s %s: structured run built %d bytes of log text", spec.Name(), seed.Name, len(fast.Log))
			}
		}
	}
}

// TestCompileCacheTransparent pins the hit-equals-miss invariant: runs
// through a shared compile cache — including guaranteed hits on the
// second sweep — must be indistinguishable (log text included) from
// uncached runs, across every target sharing the cache.
func TestCompileCacheTransparent(t *testing.T) {
	seeds := corpus.DefaultPool(10, 11)
	cache := jit.NewCache(0)
	for sweep := 0; sweep < 2; sweep++ {
		for _, spec := range AllSpecs() {
			for _, seed := range seeds {
				ref, err := Run(seed.Parse(), spec, runOpts())
				if err != nil {
					t.Fatalf("%s %s: uncached run: %v", spec.Name(), seed.Name, err)
				}
				opt := runOpts()
				opt.CompileCache = cache
				cached, err := Run(seed.Parse(), spec, opt)
				if err != nil {
					t.Fatalf("%s %s: cached run: %v", spec.Name(), seed.Name, err)
				}
				assertRunsEquivalent(t, spec.Name()+"/"+seed.Name, ref, cached)
				if cached.Log != ref.Log {
					t.Errorf("%s %s: cached log diverged from uncached", spec.Name(), seed.Name)
				}
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Errorf("cache transparency test is vacuous: stats %+v", st)
	}
}
