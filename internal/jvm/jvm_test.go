package jvm

import (
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

func TestSpecNames(t *testing.T) {
	cases := map[Spec]string{
		{buginject.HotSpot, 8}:  "openjdk-8",
		{buginject.HotSpot, 23}: "openjdk-mainline",
		{buginject.OpenJ9, 17}:  "openj9-17",
		{buginject.OpenJ9, 23}:  "openj9-mainline",
	}
	for spec, want := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("%v.Name() = %q, want %q", spec, got, want)
		}
	}
	if len(AllSpecs()) != 10 {
		t.Errorf("AllSpecs = %d, want 10 (LTS 8/11/17/21 + mainline, two impls)", len(AllSpecs()))
	}
}

func TestRunRejectsBadProgram(t *testing.T) {
	p := lang.MustParse(`class T { static void main() { print(x); } }`)
	if _, err := Run(p, Reference(), Options{}); err == nil {
		t.Fatal("ill-typed program must be rejected")
	}
}

func TestRunProducesProfileAndCoverage(t *testing.T) {
	cov := coverage.NewTracker()
	r, err := RunSource(corpus.MotivatingSeed, Reference(), Options{
		Flags:        profile.DefaultFlags(),
		Coverage:     cov,
		ForceCompile: true,
		Bugs:         []*buginject.Bug{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Crashed() {
		t.Fatalf("bug-free run crashed: %v", r.Result.Crash)
	}
	if r.Compiled == 0 {
		t.Error("nothing compiled under ForceCompile")
	}
	if r.OBV.Total() == 0 {
		t.Errorf("empty OBV; log:\n%s", r.Log)
	}
	if cov.Percent(coverage.C2) == 0 || cov.Percent(coverage.Runtime) == 0 {
		t.Error("coverage not recorded")
	}
}

func TestPureInterpreterHasNoJITActivity(t *testing.T) {
	r, err := RunSource(corpus.MotivatingSeed, Reference(), Options{
		Flags:           profile.DefaultFlags(),
		PureInterpreter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Compiled != 0 || r.OBV.Total() != 0 || len(r.Triggered) != 0 {
		t.Errorf("interpreter run shows JIT activity: compiled=%d obv=%v", r.Compiled, r.OBV)
	}
}

func TestVersionedBugArming(t *testing.T) {
	// The JDK-8312744 trigger program crashes 17/21/mainline but not 8/11.
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 1500; i += 1) { total = total + t.foo(i); }
    print(total);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) { acc = acc + k + i; }
    }
    synchronized (this) { acc = acc + this.f; }
    return acc;
  }
}`
	for _, tc := range []struct {
		version int
		crash   bool
	}{{8, false}, {11, false}, {17, true}, {21, true}, {23, true}} {
		r, err := RunSource(src, Spec{buginject.HotSpot, tc.version}, Options{ForceCompile: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Crashed() != tc.crash {
			t.Errorf("jdk%d: crashed=%v, want %v (%v)", tc.version, r.Crashed(), tc.crash, r.Result.Crash)
		}
		if tc.crash && r.Result.Crash.BugID != "JDK-8312744" {
			t.Errorf("jdk%d: crash = %s, want JDK-8312744", tc.version, r.Result.Crash.BugID)
		}
	}
}

func TestDifferentialDetectsMiscompile(t *testing.T) {
	// The diffjvm example's program: RSE defect drops a live store on the
	// versions carrying Issue-18919 / JDK-8303005.
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 1500; i += 1) { total = total + t.foo(i); }
    print(total);
    print(t.f);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      acc = 7;
      acc = i + k;
      this.f = this.f + acc;
    }
    return acc;
  }
}`
	p := lang.MustParse(src)
	diff, err := RunDifferential(p, AllSpecs(), Options{ForceCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Inconsistent() {
		t.Fatal("expected divergent outputs across versions")
	}
	found := false
	for _, b := range diff.TriggeredBugs() {
		if b.ID == "Issue-18919" || b.ID == "JDK-8303005" {
			found = true
		}
	}
	if !found {
		t.Errorf("triggered set misses the RSE defects: %v", diff.TriggeredBugs())
	}
}

func TestDifferentialConsistentOnCleanProgram(t *testing.T) {
	p := lang.MustParse(`class T { static void main() { print(41 + 1); } }`)
	diff, err := RunDifferential(p, AllSpecs(), Options{ForceCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff.Inconsistent() {
		t.Errorf("trivial program diverges: %d groups", len(diff.Groups))
	}
	if diff.AnyCrash() != nil {
		t.Errorf("trivial program crashed: %v", diff.AnyCrash().Result.Crash)
	}
}

func TestHsErrReport(t *testing.T) {
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 1500; i += 1) { total = total + t.foo(i); }
    print(total);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) { acc = acc + k + i; }
    }
    synchronized (this) { acc = acc + this.f; }
    return acc;
  }
}`
	r, err := RunSource(src, Reference(), Options{ForceCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Crashed() {
		t.Fatal("expected crash")
	}
	rep := r.HsErr()
	for _, want := range []string{"A fatal error has been detected", "JDK-8312744", "openjdk-mainline"} {
		if !strings.Contains(rep, want) {
			t.Errorf("hs_err missing %q:\n%s", want, rep)
		}
	}
}

func TestOpenJ9TuningDiffers(t *testing.T) {
	// Same program, both implementations bug-free: outputs agree even
	// though the pipelines tune differently.
	p := lang.MustParse(corpus.MotivatingSeed)
	hs, err := Run(lang.CloneProgram(p), Spec{buginject.HotSpot, 23}, Options{ForceCompile: true, Bugs: []*buginject.Bug{}})
	if err != nil {
		t.Fatal(err)
	}
	j9, err := Run(lang.CloneProgram(p), Spec{buginject.OpenJ9, 23}, Options{ForceCompile: true, Bugs: []*buginject.Bug{}})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Result.OutputString() != j9.Result.OutputString() {
		t.Errorf("impls disagree on a clean program:\n%s\nvs\n%s",
			hs.Result.OutputString(), j9.Result.OutputString())
	}
}

func TestFirstDivergence(t *testing.T) {
	mk := func(spec Spec, out string) *ExecResult {
		return &ExecResult{Spec: spec, Result: &vm.Result{Output: []string{out}}}
	}
	d := &Differential{Groups: map[string][]Spec{}}
	for _, r := range []*ExecResult{
		mk(Spec{buginject.HotSpot, 8}, "42"),
		mk(Spec{buginject.HotSpot, 17}, "42"),
		mk(Spec{buginject.HotSpot, 21}, "41"),
		mk(Spec{buginject.HotSpot, 23}, "42"),
	} {
		d.Results = append(d.Results, r)
		key := r.Result.OutputString()
		d.Groups[key] = append(d.Groups[key], r.Spec)
	}
	div := d.FirstDivergence()
	if div == nil {
		t.Fatal("inconsistent differential reported no divergence")
	}
	if div.Modal != (Spec{buginject.HotSpot, 8}) {
		t.Errorf("modal = %v, want first modal-output spec", div.Modal)
	}
	if div.Divergent != (Spec{buginject.HotSpot, 21}) || div.Index != 2 {
		t.Errorf("divergent = %v #%d, want openjdk-21 #2", div.Divergent, div.Index)
	}

	// Consistent results yield nil.
	c := &Differential{Groups: map[string][]Spec{"42": {{buginject.HotSpot, 8}}}}
	if c.FirstDivergence() != nil {
		t.Error("consistent differential reported a divergence")
	}
}

func TestFirstDivergenceModalTieBreak(t *testing.T) {
	// 1-vs-1 tie: the first result's output is modal, the second diverges.
	mk := func(spec Spec, out string) *ExecResult {
		return &ExecResult{Spec: spec, Result: &vm.Result{Output: []string{out}}}
	}
	d := &Differential{Groups: map[string][]Spec{
		"a": {{buginject.HotSpot, 8}}, "b": {{buginject.HotSpot, 17}},
	}}
	d.Results = []*ExecResult{mk(Spec{buginject.HotSpot, 8}, "a"), mk(Spec{buginject.HotSpot, 17}, "b")}
	div := d.FirstDivergence()
	if div == nil || div.Modal != (Spec{buginject.HotSpot, 8}) || div.Index != 1 {
		t.Errorf("tie-break divergence = %+v, want modal=openjdk-8 index=1", div)
	}
}
