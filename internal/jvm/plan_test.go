package jvm

import (
	"strings"
	"testing"

	"repro/internal/buginject"
	"repro/internal/jit"
	"repro/internal/lang"
)

func TestRunRejectsInvalidPlan(t *testing.T) {
	bad := jit.DefaultPlan().Clone()
	bad.C2.Front = append(bad.C2.Front, "vectorize")
	p := lang.MustParse(`class T { static void main() { print(1); } }`)
	_, err := Run(p, Reference(), Options{Plan: bad})
	if err == nil || !strings.Contains(err.Error(), "plan rejected") {
		t.Errorf("invalid plan accepted: %v", err)
	}
}

// TestPlanDifferentialConsistentWithBugsDisabled: any valid plan must
// preserve program semantics — with no defects armed, a spread of fuzzed
// schedules over an optimization-heavy program all print the same thing.
func TestPlanDifferentialConsistentWithBugsDisabled(t *testing.T) {
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    t.f = 2;
    long acc = 0;
    for (int i = 0; i < 3000; i += 1) {
      acc = acc + t.caller(i);
    }
    print(acc);
  }
  int caller(int i) {
    T tmp = new T();
    tmp.f = i;
    int v = this.locked(i) + tmp.f;
    for (int k = 0; k < 3; k += 1) { v = v + k; }
    return v + 1;
  }
  synchronized int locked(int x) { return x + this.f; }
}`
	plans := []*jit.Plan{nil}
	for seed := int64(1); seed <= 6; seed++ {
		plans = append(plans, jit.GeneratePlan(seed, jit.PlanFull))
	}
	plans = append(plans, jit.GeneratePlan(7, jit.PlanMinimal))
	diff, err := RunPlanDifferential(lang.MustParse(src), Reference(), plans,
		Options{ForceCompile: true, Bugs: []*buginject.Bug{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Results) != len(plans) {
		t.Fatalf("got %d results for %d plans", len(diff.Results), len(plans))
	}
	if diff.Inconsistent() {
		for _, r := range diff.Results {
			t.Logf("plan %s: %q", r.PlanID, r.Result.OutputString())
		}
		t.Fatal("valid plans diverge on a defect-free program")
	}
	for i, r := range diff.Results {
		if want := jit.PlanID(plans[i]); r.PlanID != want {
			t.Errorf("result %d PlanID = %q, want %q", i, r.PlanID, want)
		}
	}
}

// orderingSrc is the Issue-19301 witness: caller allocates a NoEscape
// local (escape analysis records BEscapeNone) and inlines a synchronized
// callee (the inliner records BInlineSync). locked() throws once late in
// the run, so a sync region that lost its exception cleanup leaks the
// monitor into the output.
const orderingSrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    long acc = 0;
    for (int i = 0; i < 6000; i += 1) {
      try {
        int v = t.caller(i);
        acc = acc + v % 1000;
      } catch (e) {
        acc = acc + e;
      }
    }
    print(acc);
  }
  int caller(int i) {
    T tmp = new T();
    tmp.f = i;
    int v = this.locked(i);
    return v + 1 + tmp.f;
  }
  synchronized int locked(int x) { return this.f + 100 / (x - 5900); }
}`

// eaFirstPlan is the default pipeline with one swap: escape analysis
// runs before inlining. Every structural precondition still holds
// (dereflect precedes inline; EA precedes its consumers), so the plan
// validates — it just explores the pair ordering the fixed pipeline
// never emits.
func eaFirstPlan(t *testing.T) *jit.Plan {
	t.Helper()
	p := jit.DefaultPlan().Clone()
	p.C2.Front = []string{"dereflect", "escape_analysis", "inline", "lock_elide",
		"scalar_replace", "autobox"}
	if err := p.Validate(); err != nil {
		t.Fatalf("ea-first plan invalid: %v", err)
	}
	return p
}

// TestPlanDifferentialDetectsOrderingSensitiveBug is the acceptance
// test for the plan-vs-plan oracle: Issue-19301 triggers on the pair
// (BInlineSync while BEscapeNone already recorded). The default C2
// schedule runs inline strictly before escape analysis, so within one
// compilation BInlineSync can never observe a prior BEscapeNone — the
// fixed pipeline provably cannot trigger the bug. A plan that hoists
// escape analysis above inlining triggers it, and the plan-vs-plan
// output comparison flags the divergence on a single spec.
func TestPlanDifferentialDetectsOrderingSensitiveBug(t *testing.T) {
	spec := Spec{buginject.OpenJ9, 17}

	// Fixed pipeline alone: the bug must not trigger.
	base, err := Run(lang.MustParse(orderingSrc), spec, Options{ForceCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range base.Triggered {
		if b.ID == "Issue-19301" {
			t.Fatal("default plan triggered Issue-19301 — ordering argument broken")
		}
	}

	diff, err := RunPlanDifferential(lang.MustParse(orderingSrc), spec,
		[]*jit.Plan{nil, eaFirstPlan(t)}, Options{ForceCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	if crash := diff.AnyCrash(); crash != nil {
		t.Fatalf("unexpected crash under plan %s: %v", crash.PlanID, crash.Result.Crash)
	}
	if !diff.Inconsistent() {
		t.Fatal("ea-first plan did not diverge from the default plan")
	}
	found := false
	for _, b := range diff.DivergentBugs() {
		if b.ID == "Issue-19301" {
			found = true
		}
	}
	if !found {
		t.Errorf("divergent bugs miss Issue-19301: %v", diff.DivergentBugs())
	}
	div := diff.FirstDivergence()
	if div == nil {
		t.Fatal("no divergence located")
	}
	if div.ModalPlan == "" || div.DivergentPlan == "" || div.ModalPlan == div.DivergentPlan {
		t.Errorf("divergence plan provenance broken: %+v", div)
	}
}
