package jvm

import "testing"

// TestParseSpecRoundTrip: ParseSpec inverts Spec.Name for every build,
// which is what the exec wire protocol relies on to ship specs as
// strings.
func TestParseSpecRoundTrip(t *testing.T) {
	for _, spec := range AllSpecs() {
		got, err := ParseSpec(spec.Name())
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec.Name(), err)
			continue
		}
		if got != spec {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", spec.Name(), got, spec)
		}
	}
}

func TestParseSpecForms(t *testing.T) {
	if s, err := ParseSpec("openjdk-mainline"); err != nil || s.Version != 23 {
		t.Errorf("mainline: %+v, %v", s, err)
	}
	for _, bad := range []string{"", "jdk-17", "openjdk-7", "openj9-", "openjdk-17extra"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}
