// Package baselines reimplements the comparison tools' strategies over
// the same substrate: JITFuzz (coverage-guided, random mutation points,
// non-nested insertions, 1000 iterations per seed) and Artemis
// (compilation-space exploration with three non-iterative templates),
// plus the paper's ablation variants MopFuzzer_g (no profile guidance)
// and MopFuzzer_r (random statement each iteration).
package baselines

import (
	"context"
	"math/rand"

	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/exec"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

// ExecutorSetter is implemented by every baseline tool: the experiment
// harness uses it to route all target executions through a configured
// backend (in-process by default, subprocess under -backend).
type ExecutorSetter interface {
	SetExecutor(ex exec.Executor)
}

// Tool is a fuzzing strategy the experiment harness can drive
// seed-by-seed. seedIdx perturbs the tool's RNG per seed.
type Tool interface {
	Name() string
	FuzzSeed(name string, seed *lang.Program, seedIdx int64) (*core.FuzzResult, error)
}

// --- MopFuzzer and its variants ---

// MopFuzzerTool wraps the core fuzzer as a Tool.
type MopFuzzerTool struct {
	Label string
	Cfg   core.Config
}

// NewMopFuzzer returns the full system (guided, fixed MP).
func NewMopFuzzer(target jvm.Spec, cov *coverage.Tracker) *MopFuzzerTool {
	cfg := core.DefaultConfig(target)
	cfg.Coverage = cov
	return &MopFuzzerTool{Label: "MopFuzzer", Cfg: cfg}
}

// NewMopFuzzerG returns MopFuzzer_g: no profile-data guidance (random
// mutator each iteration, weights frozen).
func NewMopFuzzerG(target jvm.Spec, cov *coverage.Tracker) *MopFuzzerTool {
	cfg := core.DefaultConfig(target)
	cfg.Guided = false
	cfg.Coverage = cov
	return &MopFuzzerTool{Label: "MopFuzzer_g", Cfg: cfg}
}

// NewMopFuzzerR returns MopFuzzer_r: a random statement is selected at
// every iteration instead of a fixed mutation point.
func NewMopFuzzerR(target jvm.Spec, cov *coverage.Tracker) *MopFuzzerTool {
	cfg := core.DefaultConfig(target)
	cfg.FixedMP = false
	cfg.Coverage = cov
	return &MopFuzzerTool{Label: "MopFuzzer_r", Cfg: cfg}
}

func (t *MopFuzzerTool) Name() string { return t.Label }

// SetExecutor implements ExecutorSetter.
func (t *MopFuzzerTool) SetExecutor(ex exec.Executor) { t.Cfg.Executor = ex }

func (t *MopFuzzerTool) FuzzSeed(name string, seed *lang.Program, seedIdx int64) (*core.FuzzResult, error) {
	cfg := t.Cfg
	cfg.Seed = seedIdx
	return core.NewFuzzer(cfg).FuzzSeed(name, seed)
}

// --- JITFuzz ---

// JITFuzzTool models JITFuzz's strategy (§2.5): six mutators (four
// optimization-triggering — inlining, simplification, scalar
// replacement, escape analysis — and two control-flow reshapers),
// applied at a fresh random mutation point every iteration, keeping a
// mutant only when it increases coverage. Inserted code is independent:
// never nested around previous insertions.
type JITFuzzTool struct {
	Target      jvm.Spec
	Iterations  int // paper default: 1000 per seed
	Coverage    *coverage.Tracker
	MaxSteps    int64
	DiffSpecs   []jvm.Spec
	DisableBugs bool
	Executor    exec.Executor // nil = in-process
}

// NewJITFuzz builds the baseline with the paper's defaults.
func NewJITFuzz(target jvm.Spec, cov *coverage.Tracker) *JITFuzzTool {
	return &JITFuzzTool{
		Target:     target,
		Iterations: 1000,
		Coverage:   cov,
		MaxSteps:   3_000_000,
		DiffSpecs:  jvm.AllSpecs(),
	}
}

func (t *JITFuzzTool) Name() string { return "JITFuzz" }

// SetExecutor implements ExecutorSetter.
func (t *JITFuzzTool) SetExecutor(ex exec.Executor) { t.Executor = ex }

// jitfuzzMutators are the strategy's six mutators, built from the same
// mutation library so the comparison isolates *strategy*, not mutation
// machinery.
func jitfuzzMutators() []core.Mutator {
	return []core.Mutator{
		&core.InliningEvoke{},                // function inlining
		&core.AlgebraicSimplificationEvoke{}, // simplification
		&core.EscapeAnalysisEvoke{},          // scalar replacement
		&core.EscapeAnalysisEvoke{},          // escape analysis (same family)
		&branchReshaper{},                    // control-flow mutator 1
		&loopReshaper{},                      // control-flow mutator 2
	}
}

func (t *JITFuzzTool) FuzzSeed(name string, seed *lang.Program, seedIdx int64) (*core.FuzzResult, error) {
	rng := rand.New(rand.NewSource(seedIdx))
	res := &core.FuzzResult{SeedName: name}
	muts := jitfuzzMutators()

	parent := lang.CloneProgram(seed)
	if err := lang.Check(parent); err != nil {
		return nil, err
	}
	compileOnly := core.HotMethodKey(parent)
	cov := t.Coverage
	if cov == nil {
		cov = coverage.NewTracker()
	}
	run := func(p *lang.Program) (*jvm.ExecResult, error) {
		opt := jvm.Options{
			Flags:        profile.DefaultFlags(),
			ForceCompile: true,
			MaxSteps:     t.MaxSteps,
			Coverage:     cov,
			CompileOnly:  compileOnly,
		}
		if t.DisableBugs {
			opt.Bugs = []*buginject.Bug{}
		}
		return exec.Or(t.Executor).Execute(context.Background(), p, t.Target, opt)
	}
	parentExec, err := run(lang.CloneProgram(parent))
	if err != nil {
		return nil, err
	}
	res.Executions++
	res.SeedOBV = parentExec.OBV
	parentCov := cov.Hits()

	for iter := 1; iter <= t.Iterations; iter++ {
		locs := statements(parent)
		if len(locs) == 0 {
			break
		}
		loc := locs[rng.Intn(len(locs))]
		m := muts[rng.Intn(len(muts))]
		if !m.Applicable(loc) {
			continue
		}
		child := lang.CloneProgram(parent)
		childLoc := lang.Find(child, loc.Stmt.ID())
		if childLoc == nil {
			continue
		}
		if _, err := m.Apply(child, childLoc, rng); err != nil {
			continue
		}
		if err := lang.Check(child); err != nil {
			continue
		}
		if lang.CountStmts(child) > 400 {
			continue // same growth cap as the core fuzzer
		}
		ex, err := run(lang.CloneProgram(child))
		if err != nil {
			continue
		}
		res.Executions++
		res.MutatorSeq = append(res.MutatorSeq, m.Name())
		rec := core.IterationRecord{
			Iter: iter, Mutator: m.Name(), OBV: ex.OBV,
			DeltaSeed: profile.Delta(res.SeedOBV, ex.OBV),
		}
		res.Records = append(res.Records, rec)
		if ex.Crashed() {
			recordToolCrash(res, ex, iter)
			res.Final = child
			res.FinalOBV = ex.OBV
			res.FinalDelta = rec.DeltaSeed
			return res, nil
		}
		// Coverage-guided acceptance: keep the mutant only when it
		// covered new VM code.
		if ex.Result.TimedOut {
			continue
		}
		if cov.Hits() > parentCov || rng.Intn(16) == 0 {
			parent = child
			parentCov = cov.Hits()
			res.FinalOBV = ex.OBV
		}
	}
	res.Final = parent
	res.FinalDelta = profile.Delta(res.SeedOBV, res.FinalOBV)
	diffFinal(res, t.Executor, parent, t.DiffSpecs, t.MaxSteps, compileOnly)
	return res, nil
}

// --- Artemis ---

// ArtemisTool models Artemis's compilation-space exploration (§2.5):
// three mutation templates — loop insertion around calls, extra-call
// wrappers, and uncommon-trap guards — applied once (non-iteratively) to
// a seed. Templates do not interact with each other.
type ArtemisTool struct {
	Target      jvm.Spec
	Coverage    *coverage.Tracker
	MaxSteps    int64
	DiffSpecs   []jvm.Spec
	DisableBugs bool
	Executor    exec.Executor // nil = in-process
}

// NewArtemis builds the baseline.
func NewArtemis(target jvm.Spec, cov *coverage.Tracker) *ArtemisTool {
	return &ArtemisTool{Target: target, Coverage: cov, MaxSteps: 3_000_000, DiffSpecs: jvm.AllSpecs()}
}

func (t *ArtemisTool) Name() string { return "Artemis" }

// SetExecutor implements ExecutorSetter.
func (t *ArtemisTool) SetExecutor(ex exec.Executor) { t.Executor = ex }

func (t *ArtemisTool) FuzzSeed(name string, seed *lang.Program, seedIdx int64) (*core.FuzzResult, error) {
	rng := rand.New(rand.NewSource(seedIdx))
	res := &core.FuzzResult{SeedName: name}
	child := lang.CloneProgram(seed)
	if err := lang.Check(child); err != nil {
		return nil, err
	}
	compileOnly := core.HotMethodKey(child)
	run := func(p *lang.Program) (*jvm.ExecResult, error) {
		opt := jvm.Options{
			Flags:        profile.DefaultFlags(),
			ForceCompile: true,
			MaxSteps:     t.MaxSteps,
			Coverage:     t.Coverage,
			CompileOnly:  compileOnly,
		}
		if t.DisableBugs {
			opt.Bugs = []*buginject.Bug{}
		}
		return exec.Or(t.Executor).Execute(context.Background(), p, t.Target, opt)
	}
	seedExec, err := run(lang.CloneProgram(child))
	if err != nil {
		return nil, err
	}
	res.Executions++
	res.SeedOBV = seedExec.OBV

	// Apply 1–3 templates at random points, each once (non-iterative).
	// Artemis's templates deliberately manipulate the *hot* path (they
	// control which segments the JIT compiles), so sites are drawn from
	// the workload method.
	templates := []core.Mutator{&artemisLoopTemplate{}, &artemisCallTemplate{}, &core.DeoptimizationEvoke{}}
	n := 1 + rng.Intn(3)
	for k := 0; k < n; k++ {
		locs := statements(child)
		var hot []*lang.Location
		for _, l := range locs {
			if l.Class.Name+"."+l.Method.Name == compileOnly {
				hot = append(hot, l)
			}
		}
		if len(hot) > 0 {
			locs = hot
		}
		if len(locs) == 0 {
			break
		}
		loc := locs[rng.Intn(len(locs))]
		m := templates[rng.Intn(len(templates))]
		if !m.Applicable(loc) {
			continue
		}
		cand := lang.CloneProgram(child)
		candLoc := lang.Find(cand, loc.Stmt.ID())
		if candLoc == nil {
			continue
		}
		if _, err := m.Apply(cand, candLoc, rng); err != nil {
			continue
		}
		if err := lang.Check(cand); err != nil {
			continue // template produced an invalid program; skip it
		}
		child = cand
		res.MutatorSeq = append(res.MutatorSeq, m.Name())
	}

	finalExec, err := run(lang.CloneProgram(child))
	if err != nil {
		return nil, err
	}
	res.Executions++
	res.Final = child
	res.FinalOBV = finalExec.OBV
	res.FinalDelta = profile.Delta(res.SeedOBV, finalExec.OBV)
	res.Records = append(res.Records, core.IterationRecord{
		Iter: 1, Mutator: "artemis-template", OBV: finalExec.OBV, DeltaSeed: res.FinalDelta,
	})
	if finalExec.Crashed() {
		recordToolCrash(res, finalExec, 1)
		return res, nil
	}
	diffFinal(res, t.Executor, child, t.DiffSpecs, t.MaxSteps, compileOnly)
	return res, nil
}

// artemisLoopTemplate wraps a statement in a fresh (possibly nested)
// counted loop — Artemis's hotness-control template, which builds more
// complex loop structures than MopFuzzer's (§4.3).
type artemisLoopTemplate struct{}

func (artemisLoopTemplate) Name() string   { return "Artemis-LoopTemplate" }
func (artemisLoopTemplate) Evokes() string { return "compilation-space loops" }
func (artemisLoopTemplate) Applicable(loc *lang.Location) bool {
	// Wrapping a declaration would shrink its scope; wrapping a return
	// or throw would break definite completion.
	switch loc.Stmt.(type) {
	case *lang.VarDecl, *lang.Return, *lang.Throw:
		return false
	}
	return true
}

func (artemisLoopTemplate) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (core.MP, error) {
	depth := 1 + rng.Intn(2)
	stmt := loc.Stmt
	inner := stmt
	for d := 0; d < depth; d++ {
		v := lang.FreshVar(loc.Method, "at")
		loop := lang.Register(p, &lang.For{
			Var:  v,
			From: &lang.IntLit{V: 0},
			To:   &lang.IntLit{V: int64(2 + rng.Intn(4))},
			Step: 1,
			Body: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{inner}}),
		})
		inner = loop
	}
	loc.Replace(inner)
	return core.MP{ID: stmt.ID()}, nil
}

// artemisCallTemplate routes an int expression through a fresh wrapper
// method (the extra-call template).
type artemisCallTemplate struct{}

func (artemisCallTemplate) Name() string   { return "Artemis-CallTemplate" }
func (artemisCallTemplate) Evokes() string { return "interpretation/JIT boundary calls" }
func (artemisCallTemplate) Applicable(loc *lang.Location) bool {
	return (&core.InliningEvoke{}).Applicable(loc)
}

func (artemisCallTemplate) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (core.MP, error) {
	return (&core.InliningEvoke{}).Apply(p, loc, rng)
}

// --- JITFuzz control-flow reshapers ---

// branchReshaper wraps a statement in if/else with both arms executing
// the statement (control-flow reshaping without semantic change).
type branchReshaper struct{}

func (branchReshaper) Name() string   { return "JITFuzz-Branch" }
func (branchReshaper) Evokes() string { return "control-flow reshaping" }
func (branchReshaper) Applicable(loc *lang.Location) bool {
	_, isDecl := loc.Stmt.(*lang.VarDecl)
	return !isDecl
}

func (branchReshaper) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (core.MP, error) {
	stmt := loc.Stmt
	cloned := lang.CloneStmt(stmt)
	lang.ReassignIDs(p, cloned)
	iff := lang.Register(p, &lang.If{
		Cond: &lang.Binary{Op: lang.OpGe, L: &lang.IntLit{V: int64(rng.Intn(5))}, R: &lang.IntLit{V: 2}},
		Then: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{stmt}}),
		Else: lang.Register(p, &lang.Block{Stmts: []lang.Stmt{cloned}}),
	})
	loc.Replace(iff)
	return core.MP{ID: stmt.ID()}, nil
}

// loopReshaper inserts an independent busy loop before the statement
// (not wrapping it — JITFuzz insertions are independent of each other).
type loopReshaper struct{}

func (loopReshaper) Name() string                       { return "JITFuzz-Loop" }
func (loopReshaper) Evokes() string                     { return "hotness control" }
func (loopReshaper) Applicable(loc *lang.Location) bool { return true }

func (loopReshaper) Apply(p *lang.Program, loc *lang.Location, rng *rand.Rand) (core.MP, error) {
	v := lang.FreshVar(loc.Method, "jf")
	sink := lang.FreshVar(loc.Method, "jfs")
	decl := lang.Register(p, &lang.VarDecl{Name: sink, Ty: lang.Int, Init: &lang.IntLit{V: 0}})
	body := lang.Register(p, &lang.Block{Stmts: []lang.Stmt{
		lang.Register(p, &lang.Assign{
			Target: &lang.VarRef{Name: sink},
			Value: &lang.Binary{Op: lang.OpAdd,
				L: &lang.VarRef{Name: sink}, R: &lang.VarRef{Name: v}},
		}),
	}})
	loop := lang.Register(p, &lang.For{
		Var: v, From: &lang.IntLit{V: 0},
		To:   &lang.IntLit{V: int64(4 + rng.Intn(12))},
		Step: 1, Body: body,
	})
	loc.InsertBefore(decl)
	loc.InsertBefore(loop)
	return core.MP{ID: loc.Stmt.ID()}, nil
}

// --- shared plumbing ---

func statements(p *lang.Program) []*lang.Location {
	var out []*lang.Location
	for _, loc := range lang.Statements(p) {
		if _, isBlock := loc.Stmt.(*lang.Block); isBlock {
			continue
		}
		out = append(out, loc)
	}
	return out
}

func recordToolCrash(res *core.FuzzResult, exec *jvm.ExecResult, iter int) {
	finding := core.BugFinding{
		Oracle:    "crash",
		Iteration: iter,
		Mutators:  append([]string(nil), res.MutatorSeq...),
	}
	if crash := exec.Result.Crash; crash != nil {
		if b := buginject.ByID(crash.BugID); b != nil {
			finding.Bug = b
		}
	}
	if finding.Bug == nil && len(exec.Triggered) > 0 {
		finding.Bug = exec.Triggered[0]
	}
	if finding.Bug != nil {
		res.Findings = append(res.Findings, finding)
	}
}

func diffFinal(res *core.FuzzResult, ex exec.Executor, p *lang.Program, specs []jvm.Spec, maxSteps int64, compileOnly string) {
	if len(specs) == 0 {
		return
	}
	diff, err := exec.Or(ex).ExecuteDifferential(context.Background(), p, specs, jvm.Options{
		ForceCompile: true, MaxSteps: maxSteps, CompileOnly: compileOnly,
	})
	if err != nil {
		return
	}
	res.Executions += len(diff.Results)
	if crash := diff.AnyCrash(); crash != nil {
		recordToolCrash(res, crash, 0)
		return
	}
	if diff.Inconsistent() {
		for _, b := range diff.DivergentBugs() {
			res.Findings = append(res.Findings, core.BugFinding{
				Bug: b, Oracle: "differential",
				Mutators: append([]string(nil), res.MutatorSeq...),
			})
		}
	}
}
