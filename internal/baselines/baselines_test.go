package baselines

import (
	"testing"

	"repro/internal/buginject"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/jvm"
	"repro/internal/lang"
)

var target = jvm.Spec{Impl: buginject.HotSpot, Version: 17}

func seed() *lang.Program { return lang.MustParse(corpus.MotivatingSeed) }

func TestToolNames(t *testing.T) {
	if NewMopFuzzer(target, nil).Name() != "MopFuzzer" {
		t.Error("MopFuzzer name")
	}
	if NewMopFuzzerG(target, nil).Name() != "MopFuzzer_g" {
		t.Error("MopFuzzer_g name")
	}
	if NewMopFuzzerR(target, nil).Name() != "MopFuzzer_r" {
		t.Error("MopFuzzer_r name")
	}
	if NewJITFuzz(target, nil).Name() != "JITFuzz" {
		t.Error("JITFuzz name")
	}
	if NewArtemis(target, nil).Name() != "Artemis" {
		t.Error("Artemis name")
	}
}

func TestVariantsConfiguredPerPaper(t *testing.T) {
	g := NewMopFuzzerG(target, nil)
	if g.Cfg.Guided || !g.Cfg.FixedMP {
		t.Errorf("MopFuzzer_g config = guided %v fixedMP %v", g.Cfg.Guided, g.Cfg.FixedMP)
	}
	r := NewMopFuzzerR(target, nil)
	if !r.Cfg.Guided || r.Cfg.FixedMP {
		t.Errorf("MopFuzzer_r config = guided %v fixedMP %v", r.Cfg.Guided, r.Cfg.FixedMP)
	}
	jf := NewJITFuzz(target, nil)
	if jf.Iterations != 1000 {
		t.Errorf("JITFuzz iterations = %d, want 1000", jf.Iterations)
	}
}

func TestJITFuzzRuns(t *testing.T) {
	cov := coverage.NewTracker()
	jf := NewJITFuzz(target, cov)
	jf.Iterations = 30
	jf.DiffSpecs = nil
	jf.DisableBugs = true
	res, err := jf.FuzzSeed("seed", seed(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 10 {
		t.Errorf("Executions = %d", res.Executions)
	}
	if res.Final == nil {
		t.Fatal("no final mutant")
	}
	if err := lang.Check(res.Final); err != nil {
		t.Fatalf("final mutant ill-typed: %v", err)
	}
	if cov.Hits() == 0 {
		t.Error("no coverage recorded")
	}
}

func TestArtemisNonIterative(t *testing.T) {
	art := NewArtemis(target, nil)
	art.DiffSpecs = nil
	art.DisableBugs = true
	res, err := art.FuzzSeed("seed", seed(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Artemis applies templates once: seed execution + one mutant
	// execution only.
	if res.Executions != 2 {
		t.Errorf("Executions = %d, want 2 (non-iterative)", res.Executions)
	}
	if err := lang.Check(res.Final); err != nil {
		t.Fatalf("final mutant ill-typed: %v", err)
	}
}

func TestMopVariantsProduceValidMutants(t *testing.T) {
	for _, mk := range []func(jvm.Spec, *coverage.Tracker) *MopFuzzerTool{
		NewMopFuzzer, NewMopFuzzerG, NewMopFuzzerR,
	} {
		tool := mk(target, nil)
		tool.Cfg.MaxIterations = 8
		tool.Cfg.DiffSpecs = nil
		tool.Cfg.DisableBugs = true
		res, err := tool.FuzzSeed("seed", seed(), 9)
		if err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		if err := lang.Check(res.Final); err != nil {
			t.Fatalf("%s: invalid final mutant: %v", tool.Name(), err)
		}
	}
}

func TestJITFuzzGrowthCapped(t *testing.T) {
	jf := NewJITFuzz(target, nil)
	jf.Iterations = 120
	jf.DiffSpecs = nil
	jf.DisableBugs = true
	res, err := jf.FuzzSeed("seed", seed(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if n := lang.CountStmts(res.Final); n > 400 {
		t.Errorf("final mutant has %d statements, cap is 400", n)
	}
}
