package jit

import (
	"fmt"
	"sync"

	"repro/internal/profile"
)

// CacheableHook is a Hook whose observable behavior is a pure function
// of a fingerprintable state: given the same IR, tier, and fingerprint,
// it makes the same decisions and triggers the same bug IDs. Such hooks
// let whole compilations be cached — on a hit the side effects are
// replayed instead of re-derived. The bug injector qualifies (its only
// cross-compilation state is the set of already-triggered one-shot
// effects); arbitrary test hooks do not, and their presence disables
// the cache.
type CacheableHook interface {
	Hook
	// CacheFingerprint identifies the armed defect set plus any
	// execution-local state that can change compile output.
	CacheFingerprint() string
	// TriggeredIDs returns the bug IDs triggered so far this execution,
	// in trigger order.
	TriggeredIDs() []string
	// ReplayTriggered re-applies the trigger-state transitions a cached
	// compilation performed, in recorded order.
	ReplayTriggered(ids []string)
}

// recordedLine is one profile emission captured during a cached
// compilation. Lines are captured before flag gating so an entry can be
// replayed under any flag set; the recorder re-applies its own gate.
type recordedLine struct {
	flag      profile.Flag
	behaviors []profile.Behavior
	text      string
}

// cacheEntry holds everything needed to replay one successful
// compilation: the optimized IR (read-only at execution time — runtime
// trap state lives on Compiled, not on the Func), the captured profile
// emissions and coverage regions, the bug IDs the compile triggered,
// and the finished context for OnCompiled observers.
type cacheEntry struct {
	fn    *Func
	lines []recordedLine
	cover []string
	trig  []string
	ctx   *Context
}

// CacheStats reports cache effectiveness for the bench harness.
type CacheStats struct {
	Hits, Misses, Resets int64
}

// Cache is a campaign-scoped compiled-method cache shared across
// differential targets. Keys combine the program fingerprint, method,
// tier, pipeline options, hook fingerprint, and the method's deopt
// count — every input a compilation reads — so a hit is byte-equivalent
// to recompiling. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	max     int
	stats   CacheStats
}

// NewCache returns a cache bounded to roughly maxEntries compilations
// (0 picks a default). When full the whole map is dropped rather than
// evicting piecemeal: a hit is equivalent to a miss, so the reset policy
// cannot affect results, only hit rate.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &Cache{entries: make(map[string]*cacheEntry), max: maxEntries}
}

func (c *Cache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		return e
	}
	c.stats.Misses++
	return nil
}

func (c *Cache) put(key string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		c.entries = make(map[string]*cacheEntry, c.max)
		c.stats.Resets++
	}
	c.entries[key] = e
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the current number of cached compilations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// captureEmitter tees profile emissions into a cache entry while
// forwarding them to the execution's recorder (which applies flag
// gating; the captured copy stays ungated).
type captureEmitter struct {
	next  *profile.Recorder
	lines []recordedLine
}

func (t *captureEmitter) Emitf(flag profile.Flag, format string, args ...any) {
	text := fmt.Sprintf(format, args...)
	t.lines = append(t.lines, recordedLine{flag: flag, text: text})
	t.next.AppendLine(flag, nil, text)
}

func (t *captureEmitter) EmitBehaviorf(flag profile.Flag, behaviors []profile.Behavior, format string, args ...any) {
	text := fmt.Sprintf(format, args...)
	t.lines = append(t.lines, recordedLine{flag: flag, behaviors: behaviors, text: text})
	t.next.AppendLine(flag, behaviors, text)
}

var (
	_ profile.Emitter         = (*captureEmitter)(nil)
	_ profile.BehaviorEmitter = (*captureEmitter)(nil)
)
