package jit

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/profile"
	"repro/internal/vm"
)

// TestDefaultPlanIsFixedPipeline pins the default plan to the exact
// pass schedule the hard-coded C1/C2 pipelines ran before plans became
// data. Changing this table silently changes every default-mode
// campaign, so the structure and fingerprint are both pinned.
func TestDefaultPlanIsFixedPipeline(t *testing.T) {
	p := DefaultPlan()
	if err := p.Validate(); err != nil {
		t.Fatalf("default plan invalid: %v", err)
	}
	want := &Plan{
		C1: TierPlan{Front: []string{"inline", "algebra", "rse", "dce"}},
		C2: TierPlan{
			Front: []string{"dereflect", "inline", "escape_analysis", "lock_elide",
				"scalar_replace", "autobox"},
			Loop: []string{"nested_locks", "gvn", "algebra", "loop_peel",
				"loop_unswitch", "loop_unroll", "lock_coarsen", "rse", "dce"},
			Rounds: 4,
			Tail:   []string{"traps"},
		},
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("default plan drifted:\n got: %+v\nwant: %+v", p, want)
	}
	const wantFP = "plan.v1" +
		"|c1:f=inline,algebra,rse,dce;l=;r=0;t=" +
		"|c2:f=dereflect,inline,escape_analysis,lock_elide,scalar_replace,autobox" +
		";l=nested_locks,gvn,algebra,loop_peel,loop_unswitch,loop_unroll,lock_coarsen,rse,dce;r=4;t=traps"
	if fp := p.Fingerprint(); fp != wantFP {
		t.Errorf("fingerprint drifted:\n got: %s\nwant: %s", fp, wantFP)
	}
	// PlanDefault mode ignores the seed and returns the shared default.
	if GeneratePlan(12345, PlanDefault) != DefaultPlan() {
		t.Error("GeneratePlan(PlanDefault) is not the shared default plan")
	}
	if PlanID(nil) != "default" {
		t.Errorf("PlanID(nil) = %q, want \"default\"", PlanID(nil))
	}
}

func TestParsePlanMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PlanMode
	}{
		{"", PlanDefault}, {"off", PlanDefault},
		{"minimal", PlanMinimal}, {"full", PlanFull},
	} {
		got, err := ParsePlanMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePlanMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePlanMode("aggressive"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestPlanValidateRejects(t *testing.T) {
	base := func() *Plan { return DefaultPlan().Clone() }
	for _, tc := range []struct {
		name string
		mut  func(*Plan)
		want string
	}{
		{"unknown pass", func(p *Plan) { p.C2.Front = append(p.C2.Front, "vectorize") }, "unknown pass"},
		{"wrong tier", func(p *Plan) { p.C1.Front = append(p.C1.Front, "gvn") }, "not allowed"},
		{"duplicate", func(p *Plan) { p.C2.Loop = append(p.C2.Loop, "gvn") }, "twice"},
		{"tail-only in front", func(p *Plan) { p.C2.Front = append(p.C2.Front, "traps"); p.C2.Tail = nil }, "tail"},
		{"requires violated", func(p *Plan) {
			// lock_elide before escape_analysis.
			p.C2.Front = []string{"dereflect", "inline", "lock_elide", "escape_analysis",
				"scalar_replace", "autobox"}
		}, "requires"},
		{"rounds without loop", func(p *Plan) { p.C1.Rounds = 2 }, "empty loop"},
		{"loop without rounds", func(p *Plan) { p.C2.Rounds = 0 }, "rounds=0"},
	} {
		p := base()
		tc.mut(p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestPlanFingerprintOrderSensitive: the fingerprint (and so the cache
// key and ShortID) must distinguish plans that differ only in order.
func TestPlanFingerprintOrderSensitive(t *testing.T) {
	a := DefaultPlan().Clone()
	b := DefaultPlan().Clone()
	b.C2.Front = []string{"dereflect", "escape_analysis", "inline", "lock_elide",
		"scalar_replace", "autobox"}
	if err := b.Validate(); err != nil {
		t.Fatalf("reordered plan should be valid: %v", err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprints collide across different orders")
	}
	if a.ShortID() == b.ShortID() {
		t.Error("short IDs collide across different orders")
	}
	if a.ShortID() != DefaultPlan().ShortID() {
		t.Error("ShortID not stable across clones")
	}
}

// TestGeneratePlanDeterministic: the same (seed, mode) must yield the
// same plan on every goroutine — plan generation is part of the
// campaign's reproducible random stream, so worker count and scheduling
// must not leak into it.
func TestGeneratePlanDeterministic(t *testing.T) {
	for _, mode := range []PlanMode{PlanMinimal, PlanFull} {
		for seed := int64(0); seed < 20; seed++ {
			want := GeneratePlan(seed, mode).Fingerprint()
			var wg sync.WaitGroup
			got := make([]string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					got[g] = GeneratePlan(seed, mode).Fingerprint()
				}(g)
			}
			wg.Wait()
			for g, fp := range got {
				if fp != want {
					t.Fatalf("mode %s seed %d: goroutine %d produced %s, want %s", mode, seed, g, fp, want)
				}
			}
		}
	}
}

// TestGeneratedPlansPreservePreconditions sweeps many seeds in both
// modes and checks — independently of Validate — that no generated plan
// schedules a pass before its structural requirements, and that every
// mandatory pass is present.
func TestGeneratedPlansPreservePreconditions(t *testing.T) {
	for _, mode := range []PlanMode{PlanMinimal, PlanFull} {
		for seed := int64(0); seed < 500; seed++ {
			p := GeneratePlan(seed, mode)
			if err := p.Validate(); err != nil {
				t.Fatalf("mode %s seed %d: generated plan invalid: %v", mode, seed, err)
			}
			for _, tier := range []struct {
				t  vm.Tier
				tp *TierPlan
			}{{vm.TierC1, &p.C1}, {vm.TierC2, &p.C2}} {
				flat := append(append(append([]string(nil), tier.tp.Front...), tier.tp.Loop...), tier.tp.Tail...)
				pos := map[string]int{}
				for i, name := range flat {
					pos[name] = i
				}
				for i, name := range flat {
					for _, req := range passTable[name].requires {
						rp := passTable[req]
						if rp == nil || !rp.allowedIn(tier.t) {
							continue
						}
						at, ok := pos[req]
						if !ok || at >= i {
							t.Fatalf("mode %s seed %d: %q at %d precedes its requirement %q (%d, present=%v)",
								mode, seed, name, i, req, at, ok)
						}
					}
				}
				for _, name := range passOrder {
					pi := passTable[name]
					mandatory := pi.mandatoryC1
					if tier.t == vm.TierC2 {
						mandatory = pi.mandatoryC2
					}
					if mandatory && pi.allowedIn(tier.t) {
						if _, ok := pos[name]; !ok {
							t.Fatalf("mode %s seed %d: mandatory pass %q missing", mode, seed, name)
						}
					}
				}
			}
		}
	}
}

// TestGeneratePlanMinimalIsMandatoryClosure: minimal plans carry exactly
// the mandatory passes plus their requirement closure, nothing else.
func TestGeneratePlanMinimalIsMandatoryClosure(t *testing.T) {
	wantC1 := map[string]bool{"inline": true, "dce": true}
	// C2: gvn is mandatory too, and inline pulls in dereflect.
	wantC2 := map[string]bool{"inline": true, "dce": true, "gvn": true, "dereflect": true}
	for seed := int64(0); seed < 50; seed++ {
		p := GeneratePlan(seed, PlanMinimal)
		got := map[string]bool{}
		for _, n := range p.C1.flat() {
			got[n] = true
		}
		if !reflect.DeepEqual(got, wantC1) {
			t.Fatalf("seed %d: minimal C1 set = %v, want %v", seed, got, wantC1)
		}
		got = map[string]bool{}
		for _, n := range p.C2.flat() {
			got[n] = true
		}
		if !reflect.DeepEqual(got, wantC2) {
			t.Fatalf("seed %d: minimal C2 set = %v, want %v", seed, got, wantC2)
		}
	}
}

// TestGeneratePlanFullExploresOrderings: over a modest seed range, full
// mode must produce plans where escape_analysis precedes inline — the
// ordering class the fixed pipeline can never emit, and the reason plan
// fuzzing reaches pair-trigger bugs like Issue-19301.
func TestGeneratePlanFullExploresOrderings(t *testing.T) {
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		p := GeneratePlan(seed, PlanFull)
		flat := p.C2.flat()
		ea, in := -1, -1
		for i, n := range flat {
			switch n {
			case "escape_analysis":
				ea = i
			case "inline":
				in = i
			}
		}
		found = ea >= 0 && in >= 0 && ea < in
	}
	if !found {
		t.Error("no full-mode plan in 200 seeds ordered escape_analysis before inline")
	}
}

// TestCompileCachePlanIsolation pins the cache-key invariant: two plans
// never share cache entries (plan A's compiled method must not replay
// under plan B), while re-running the same plan hits and replays
// byte-identically.
func TestCompileCachePlanIsolation(t *testing.T) {
	src := hotProgram(`
    int r = 0;
    for (int k = 0; k < 6; k += 1) { r = r + i * 2 + k; }
  `)
	minimal := &Plan{
		C1: TierPlan{Front: []string{"inline", "dce"}},
		C2: TierPlan{Front: []string{"dereflect", "inline", "gvn", "dce"}},
	}
	if err := minimal.Validate(); err != nil {
		t.Fatalf("minimal plan invalid: %v", err)
	}

	cache := NewCache(0)
	run := func(p *Plan) (out, prof string) {
		img := compileImg(t, src)
		rec := profile.NewRecorder(profile.DefaultFlags())
		comp := New(rec, coverage.NewTracker(), nil)
		comp.Cache = cache
		comp.CacheSalt = "plan-isolation"
		comp.Plan = p
		res := vm.NewMachine(img, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp}).Run()
		if res.Crashed() {
			t.Fatalf("crash under plan %s: %v", PlanID(p), res.Crash)
		}
		return res.OutputString(), rec.Text()
	}

	outA, profA := run(nil)
	if cache.Stats().Hits != 0 {
		t.Fatalf("first run hit the cache: %+v", cache.Stats())
	}
	outB, profB := run(minimal)
	if cache.Stats().Hits != 0 {
		t.Fatalf("different plan hit the default plan's entries: %+v", cache.Stats())
	}
	if outA != outB {
		t.Fatalf("plans disagree on a clean program: %q vs %q", outA, outB)
	}
	if profA == profB {
		t.Fatal("plans produced identical profiles — test program not discriminating")
	}
	outA2, profA2 := run(nil)
	if cache.Stats().Hits == 0 {
		t.Fatalf("same plan did not hit the cache: %+v", cache.Stats())
	}
	if outA2 != outA || profA2 != profA {
		t.Error("cache hit is not byte-equivalent to the miss")
	}
}
