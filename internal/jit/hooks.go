package jit

// ChainHooks composes hooks into one: every non-nil hook observes every
// event in order, and the first error (compiler crash) aborts the
// chain. Nil hooks are skipped, so callers can chain optional hooks —
// the bug injector plus a test-only instrumentation hook — without
// special-casing. Returns nil when no hook remains (a correct compiler
// runs hook-free).
func ChainHooks(hooks ...Hook) Hook {
	var live []Hook
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return hookChain(live)
}

type hookChain []Hook

func (hc hookChain) Observe(ctx *Context, ev Event) error {
	for _, h := range hc {
		if err := h.Observe(ctx, ev); err != nil {
			return err
		}
	}
	return nil
}
