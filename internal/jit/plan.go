package jit

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/vm"
)

// Plan makes the pass sequence data instead of code: each tier carries
// an ordered pass list split into a straight-line front slice, a
// bounded fixpoint loop, and a tail, mirroring the shape of the
// hard-coded C1/C2 pipelines this type replaced. The default plan
// reproduces those pipelines exactly (pinned by TestDefaultPlanIsFixedPipeline
// and the golden pass tests); fuzzed plans reorder and drop optional
// passes while preserving each pass's structural preconditions — the
// compilation-plan-fuzzing axis of Graal's MinimalFuzzedCompilationPlan /
// FullFuzzedCompilationPlan, applied to the simulated JIT.
//
// Plans are immutable once built and safe to share across goroutines;
// Validate before use (jvm.Run validates incoming plans once per
// execution, keeping Compile's hot path check-free).
type Plan struct {
	C1 TierPlan `json:"c1"`
	C2 TierPlan `json:"c2"`
}

// TierPlan is one tier's pass schedule. Front runs once; Loop repeats
// up to Rounds times, stopping early when a full round records no new
// optimization events (the iterative-GVN fixpoint the fixed pipeline
// had); Tail runs once after the loop (speculation lives here: traps
// must see the final shape of the code).
type TierPlan struct {
	Front  []string `json:"front,omitempty"`
	Loop   []string `json:"loop,omitempty"`
	Rounds int      `json:"rounds,omitempty"`
	Tail   []string `json:"tail,omitempty"`
}

// PlanMode selects how GeneratePlan builds a plan.
type PlanMode string

const (
	// PlanDefault is the fixed production pipeline.
	PlanDefault PlanMode = "default"
	// PlanMinimal keeps only each tier's mandatory passes plus their
	// structural requirements, in a fuzzed-but-valid order.
	PlanMinimal PlanMode = "minimal"
	// PlanFull starts from the minimal set and inserts optional passes
	// at random valid positions, with a fuzzed loop split and round
	// budget — the ordering-interaction search space.
	PlanFull PlanMode = "full"
)

// ParsePlanMode parses the -plan-fuzz CLI/JobSpec value. "" and "off"
// both mean plan fuzzing disabled (nil mode is represented by callers
// not generating plans at all).
func ParsePlanMode(s string) (PlanMode, error) {
	switch s {
	case "", "off":
		return PlanDefault, nil
	case "minimal":
		return PlanMinimal, nil
	case "full":
		return PlanFull, nil
	}
	return "", fmt.Errorf("jit: unknown plan mode %q (want off, minimal, or full)", s)
}

// passInfo describes one optimization pass to the plan machinery: how
// to run it, which tiers may schedule it, whether a tier must schedule
// it, and which passes must already have run in the same compilation
// (structural preconditions — e.g. scalar replacement consumes the
// escape states EA computes).
type passInfo struct {
	run func(c *Compiler, ctx *Context) error
	// tiers flags which tier may schedule the pass.
	c1, c2 bool
	// mandatory flags the tiers that must schedule the pass (the
	// minimal-plan seed set).
	mandatoryC1, mandatoryC2 bool
	// requires lists passes that must appear earlier in the tier's
	// flattened first-round order. Requirements naming passes the tier
	// cannot schedule are vacuous there (C1 has no dereflect, so C1
	// inline carries no dereflect requirement).
	requires []string
	// tailOnly restricts the pass to the Tail slot (speculation must
	// observe the final code shape).
	tailOnly bool
}

// tierPrefix renders the tier tag the logging passes embed in events.
func tierPrefix(t vm.Tier) string {
	if t == vm.TierC1 {
		return "c1"
	}
	return "c2"
}

// passTable is the pass registry. Names are stable wire/API identifiers:
// they appear in serialized plans, plan fingerprints, and cache keys.
var passTable = map[string]*passInfo{
	"inline": {
		c1: true, c2: true, mandatoryC1: true, mandatoryC2: true,
		requires: []string{"dereflect"}, // C2: the parser only sees direct calls after strength-reduction
		run: func(c *Compiler, ctx *Context) error {
			budget := c.Opt.InlineBudgetC2
			def := 64
			if ctx.Tier == vm.TierC1 {
				budget, def = c.Opt.InlineBudgetC1, 16
			}
			if budget == 0 {
				budget = def
			}
			return passInline(ctx, budget)
		},
	},
	"algebra": {
		c1: true, c2: true,
		run: func(c *Compiler, ctx *Context) error { return passAlgebra(ctx, tierPrefix(ctx.Tier)) },
	},
	"rse": {
		c1: true, c2: true,
		run: func(c *Compiler, ctx *Context) error { return passRSE(ctx, tierPrefix(ctx.Tier)) },
	},
	"dce": {
		c1: true, c2: true, mandatoryC1: true, mandatoryC2: true,
		run: func(c *Compiler, ctx *Context) error { return passDCE(ctx, tierPrefix(ctx.Tier)) },
	},
	"dereflect": {
		c2: true,
		run: func(c *Compiler, ctx *Context) error { return passDereflect(ctx) },
	},
	"escape_analysis": {
		c2: true,
		run: func(c *Compiler, ctx *Context) error { return passEscapeAnalysis(ctx) },
	},
	"lock_elide": {
		c2:       true,
		requires: []string{"escape_analysis"}, // elision consults the escape states
		run:      func(c *Compiler, ctx *Context) error { return passLockElide(ctx) },
	},
	"scalar_replace": {
		c2:       true,
		requires: []string{"escape_analysis"}, // bails without escape states
		run:      func(c *Compiler, ctx *Context) error { return passScalarReplace(ctx) },
	},
	"autobox": {
		c2:  true,
		run: func(c *Compiler, ctx *Context) error { return passAutobox(ctx) },
	},
	"nested_locks": {
		c2:  true,
		run: func(c *Compiler, ctx *Context) error { return passNestedLocks(ctx) },
	},
	"gvn": {
		c2: true, mandatoryC2: true,
		run: func(c *Compiler, ctx *Context) error { return passGVN(ctx) },
	},
	"loop_peel": {
		c2:  true,
		run: func(c *Compiler, ctx *Context) error { return passLoopPeel(ctx) },
	},
	"loop_unswitch": {
		c2:  true,
		run: func(c *Compiler, ctx *Context) error { return passLoopUnswitch(ctx) },
	},
	"loop_unroll": {
		c2:  true,
		run: func(c *Compiler, ctx *Context) error { return passLoopUnroll(ctx) },
	},
	"lock_coarsen": {
		c2:  true,
		run: func(c *Compiler, ctx *Context) error { return passLockCoarsen(ctx) },
	},
	"traps": {
		c2: true, tailOnly: true,
		// Speculation stays gated on the pipeline option exactly as the
		// fixed pipeline gated it: a plan scheduling traps under
		// Speculate=false is a no-op, not an error.
		run: func(c *Compiler, ctx *Context) error {
			if !c.Opt.Speculate {
				return nil
			}
			return passTraps(ctx)
		},
	},
}

// passOrder is the registry iteration order (deterministic generation
// must not depend on Go's randomized map order). It is also the fixed
// pipeline's relative order, which documents each pass's home position.
var passOrder = []string{
	"dereflect", "inline", "escape_analysis", "lock_elide", "scalar_replace",
	"autobox", "nested_locks", "gvn", "algebra", "loop_peel", "loop_unswitch",
	"loop_unroll", "lock_coarsen", "rse", "dce", "traps",
}

// PassNames returns the registry's pass names in canonical order.
func PassNames() []string { return append([]string(nil), passOrder...) }

// allowedIn reports whether the named pass may be scheduled in tier t.
func (pi *passInfo) allowedIn(t vm.Tier) bool {
	if t == vm.TierC1 {
		return pi.c1
	}
	return pi.c2
}

// defaultPlan is the shared immutable fixed pipeline.
var defaultPlan = &Plan{
	C1: TierPlan{
		Front: []string{"inline", "algebra", "rse", "dce"},
	},
	C2: TierPlan{
		Front: []string{"dereflect", "inline", "escape_analysis", "lock_elide",
			"scalar_replace", "autobox"},
		Loop: []string{"nested_locks", "gvn", "algebra", "loop_peel",
			"loop_unswitch", "loop_unroll", "lock_coarsen", "rse", "dce"},
		Rounds: 4,
		Tail:   []string{"traps"},
	},
}

// DefaultPlan returns the fixed production pipeline as a plan. The
// returned value is shared — treat it as immutable (Clone to modify).
func DefaultPlan() *Plan { return defaultPlan }

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	cp := &Plan{C1: p.C1.clone(), C2: p.C2.clone()}
	return cp
}

func (tp TierPlan) clone() TierPlan {
	return TierPlan{
		Front:  append([]string(nil), tp.Front...),
		Loop:   append([]string(nil), tp.Loop...),
		Rounds: tp.Rounds,
		Tail:   append([]string(nil), tp.Tail...),
	}
}

// Tier selects the tier's schedule.
func (p *Plan) Tier(t vm.Tier) *TierPlan {
	if t == vm.TierC1 {
		return &p.C1
	}
	return &p.C2
}

// flat returns the tier's flattened first-round pass order — the order
// precondition checks run against.
func (tp *TierPlan) flat() []string {
	out := make([]string, 0, len(tp.Front)+len(tp.Loop)+len(tp.Tail))
	out = append(out, tp.Front...)
	out = append(out, tp.Loop...)
	out = append(out, tp.Tail...)
	return out
}

// Validate checks the plan against the registry: every pass known and
// allowed in its tier, no duplicates within a tier, loop shape
// consistent, tail-only passes in Tail, and every pass's structural
// requirements scheduled earlier in the flattened first-round order.
func (p *Plan) Validate() error {
	if err := p.C1.validate(vm.TierC1); err != nil {
		return fmt.Errorf("c1: %w", err)
	}
	if err := p.C2.validate(vm.TierC2); err != nil {
		return fmt.Errorf("c2: %w", err)
	}
	return nil
}

func (tp *TierPlan) validate(t vm.Tier) error {
	if len(tp.Loop) > 0 && tp.Rounds < 1 {
		return fmt.Errorf("loop has %d passes but rounds=%d", len(tp.Loop), tp.Rounds)
	}
	if len(tp.Loop) == 0 && tp.Rounds != 0 {
		return fmt.Errorf("rounds=%d with an empty loop", tp.Rounds)
	}
	seen := map[string]bool{}
	inTail := map[string]bool{}
	for _, name := range tp.Tail {
		inTail[name] = true
	}
	for i, name := range tp.flat() {
		pi := passTable[name]
		if pi == nil {
			return fmt.Errorf("unknown pass %q at position %d", name, i)
		}
		if !pi.allowedIn(t) {
			return fmt.Errorf("pass %q is not allowed in this tier", name)
		}
		if pi.tailOnly && !inTail[name] {
			return fmt.Errorf("pass %q may only appear in the tail", name)
		}
		if seen[name] {
			return fmt.Errorf("pass %q scheduled twice (rounds provide repetition)", name)
		}
		for _, req := range pi.requires {
			rp := passTable[req]
			if rp == nil || !rp.allowedIn(t) {
				continue // vacuous in this tier
			}
			if !seen[req] {
				return fmt.Errorf("pass %q requires %q earlier in the schedule", name, req)
			}
		}
		seen[name] = true
	}
	return nil
}

// Fingerprint renders the canonical plan identity: every pass in
// schedule order plus the loop shape. Equal fingerprints mean equal
// compilation behavior, which is why the compile cache keys on it.
func (p *Plan) Fingerprint() string {
	var b strings.Builder
	b.WriteString("plan.v1")
	writeTier := func(tag string, tp *TierPlan) {
		b.WriteString("|")
		b.WriteString(tag)
		b.WriteString(":f=")
		b.WriteString(strings.Join(tp.Front, ","))
		b.WriteString(";l=")
		b.WriteString(strings.Join(tp.Loop, ","))
		b.WriteString(";r=")
		b.WriteString(strconv.Itoa(tp.Rounds))
		b.WriteString(";t=")
		b.WriteString(strings.Join(tp.Tail, ","))
	}
	writeTier("c1", &p.C1)
	writeTier("c2", &p.C2)
	return b.String()
}

// ShortID is a compact stable identifier (16 hex digits of the
// fingerprint's fnv64a) for display, triage keys, and checkpoints,
// where the full fingerprint would bloat every record.
func (p *Plan) ShortID() string {
	h := fnv.New64a()
	h.Write([]byte(p.Fingerprint()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// PlanID names a possibly-nil plan: "default" for nil (the fixed
// pipeline), the ShortID otherwise. The identity every layer uses when
// recording plan provenance.
func PlanID(p *Plan) string {
	if p == nil {
		return "default"
	}
	return p.ShortID()
}

// GeneratePlan deterministically builds a plan from a seed. The same
// (seed, mode) always yields the same plan on every platform and
// GOMAXPROCS setting — plan generation is part of the campaign's
// reproducible random stream. PlanDefault ignores the seed.
func GeneratePlan(seed int64, mode PlanMode) *Plan {
	if mode == PlanDefault || mode == "" {
		return DefaultPlan()
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{
		C1: generateTier(rng, vm.TierC1, mode),
		C2: generateTier(rng, vm.TierC2, mode),
	}
	return p
}

// generateTier builds one tier's schedule: select the pass set
// (mandatory + requirement closure, plus optional passes under
// PlanFull), emit a random topological order over the requires
// relation, then fuzz the loop split and round budget (C2 full plans
// only — the client tier stays straight-line, like C1 itself).
func generateTier(rng *rand.Rand, t vm.Tier, mode PlanMode) TierPlan {
	include := map[string]bool{}
	var addWithReqs func(name string)
	addWithReqs = func(name string) {
		if include[name] {
			return
		}
		include[name] = true
		for _, req := range passTable[name].requires {
			if rp := passTable[req]; rp != nil && rp.allowedIn(t) {
				addWithReqs(req)
			}
		}
	}
	for _, name := range passOrder {
		pi := passTable[name]
		if !pi.allowedIn(t) || pi.tailOnly {
			continue
		}
		mandatory := pi.mandatoryC1
		if t == vm.TierC2 {
			mandatory = pi.mandatoryC2
		}
		if mandatory {
			addWithReqs(name)
		} else if mode == PlanFull && rng.Intn(4) > 0 { // keep ~3/4 of the optional passes
			addWithReqs(name)
		}
	}

	// Random topological order: repeatedly pick a random pass whose
	// requirements are already placed.
	var order []string
	placed := map[string]bool{}
	for len(order) < len(include) {
		var ready []string
		for _, name := range passOrder {
			if !include[name] || placed[name] {
				continue
			}
			ok := true
			for _, req := range passTable[name].requires {
				if rp := passTable[req]; rp != nil && rp.allowedIn(t) && include[req] && !placed[req] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, name)
			}
		}
		pick := ready[rng.Intn(len(ready))]
		order = append(order, pick)
		placed[pick] = true
	}

	tp := TierPlan{Front: order}
	if t == vm.TierC2 && mode == PlanFull {
		// Fuzz the loop structure: a random suffix of the order becomes
		// the fixpoint loop (split preserves the topological order, so
		// preconditions keep holding), with a random round budget.
		if split := rng.Intn(len(order) + 1); split < len(order) {
			tp.Front = order[:split]
			tp.Loop = order[split:]
			tp.Rounds = 1 + rng.Intn(4)
		}
		if rng.Intn(2) == 0 {
			tp.Tail = []string{"traps"}
		}
	}
	return tp
}
