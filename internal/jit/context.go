package jit

import (
	"repro/internal/coverage"
	"repro/internal/profile"
	"repro/internal/vm"
)

// BehaviorNone marks events for optimizations the VM offers no logging
// flag for (de-reflection, per §5.1 of the paper): the event exists for
// white-box consumers (bug predicates), but never reaches the profile log.
const BehaviorNone = profile.Behavior(-1)

// Event is one optimization action taken during a compilation. The
// sequence of events — with each event's structural context — is the
// interaction state that seeded bugs match against.
type Event struct {
	Pass     string
	Behavior profile.Behavior // BehaviorNone when unlogged
	Detail   string

	// Structural context at the site of the action.
	Prov      Prov // provenance union of the nodes involved
	SyncDepth int  // enclosing synchronized nesting
	LoopDepth int  // enclosing loop nesting
}

// Hook observes compilation events. Implementations model compiler
// defects: they may return a *vm.Crash (compiler crash) or corrupt the
// IR through the context (miscompilation). A correct compiler runs with
// no hooks.
type Hook interface {
	Observe(ctx *Context, ev Event) error
}

// EscapeState classifies an allocation per the escape analysis.
type EscapeState int

// Escape states.
const (
	EscapeUnknown EscapeState = iota
	NoEscape
	ArgEscape
	GlobalEscape
)

// Context carries the state of one method compilation through the pass
// pipeline.
type Context struct {
	Fn   *Func
	Tier vm.Tier
	Log  profile.Emitter
	Cov  *coverage.Tracker
	Env  vm.Env
	Hook Hook

	// Events in emission order; Counts per behavior.
	Events []Event
	Counts [profile.NumBehaviors]int64

	// Escape holds the escape-analysis classification per local name,
	// filled by the analysis pass, consumed by lock elision and scalar
	// replacement.
	Escape map[string]EscapeState

	// Miscompile effects requested by hooks, honored by the passes /
	// executor that own the behavior.
	DropSyncCleanup   bool // next inlined sync region loses its exception cleanup (Listing 1 hazard)
	DropNextStore     bool // redundant-store elimination drops a live store
	SkipCoarsenUnlock bool // coarsening forgets one unlock when merging
	CorruptFold       bool // algebraic folding produces an off-by-one constant
	DropBoundsCheck   bool // (reserved for array speculation defects)

	// coverRec, when non-nil, additionally records every compile-time
	// coverage region name in order (the compile cache's capture channel).
	coverRec *[]string
}

// Cover marks a coverage region (no-op with a nil tracker).
func (c *Context) Cover(name string) {
	if c.coverRec != nil {
		*c.coverRec = append(*c.coverRec, name)
	}
	c.Cov.Hit(name)
}

// Emitf writes a flag-gated profile log line.
func (c *Context) Emitf(flag profile.Flag, format string, args ...any) {
	if c.Log != nil {
		c.Log.Emitf(flag, format, args...)
	}
}

// EmitBehaviorf writes a flag-gated line that the OBV rule table counts
// under the given behaviors, taking the structured fast path when the
// sink supports it.
func (c *Context) EmitBehaviorf(flag profile.Flag, behaviors []profile.Behavior, format string, args ...any) {
	profile.EmitBehavior(c.Log, flag, behaviors, format, args...)
}

// Record appends an event, bumps its behavior count, and lets the hook
// observe it. The returned error, if any, is a compiler crash that must
// abort compilation.
func (c *Context) Record(ev Event) error {
	c.Events = append(c.Events, ev)
	if ev.Behavior >= 0 && int(ev.Behavior) < profile.NumBehaviors {
		c.Counts[ev.Behavior]++
	}
	if c.Hook != nil {
		return c.Hook.Observe(c, ev)
	}
	return nil
}

// Count returns how many events carried the behavior.
func (c *Context) Count(b profile.Behavior) int64 {
	if b < 0 || int(b) >= profile.NumBehaviors {
		return 0
	}
	return c.Counts[b]
}

// PairSeen reports whether both behaviors occurred in this compilation —
// the simplest interaction predicate.
func (c *Context) PairSeen(a, b profile.Behavior) bool {
	return c.Count(a) > 0 && c.Count(b) > 0
}

// MaxSyncDepth returns the deepest synchronized nesting any event saw.
func (c *Context) MaxSyncDepth() int {
	d := 0
	for _, ev := range c.Events {
		if ev.SyncDepth > d {
			d = ev.SyncDepth
		}
	}
	return d
}

// ProvUnion returns the union of all event provenance bits.
func (c *Context) ProvUnion() Prov {
	var p Prov
	for _, ev := range c.Events {
		p |= ev.Prov
	}
	return p
}
