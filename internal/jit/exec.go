package jit

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// Compiled is the executable form of an optimized method: the optimized
// tree IR plus the runtime services captured at compile time. Executing
// it is running "compiled code"; any divergence from the bytecode
// interpreter on the same program is a miscompilation.
type Compiled struct {
	F   *Func
	Env vm.Env
	Log profile.Emitter
	Cov *covSink

	trapCount int
	trapLimit int
}

// covSink is a tiny indirection so the executor can mark runtime
// coverage regions without a hard dependency on the tracker.
type covSink struct{ hit func(string) }

func (c *covSink) Hit(name string) {
	if c != nil && c.hit != nil {
		c.hit(name)
	}
}

// scopes is a lexical-scope stack of local variable bindings, stored as
// a flat name/value stack with frame marks. Lookups scan from the top,
// so shadowing resolves to the innermost binding; pushing a scope costs
// one integer append instead of a map allocation (this is the compiled
// executor's hottest structure).
type scopes struct {
	names []string
	vals  []vm.Value
	marks []int
}

func (s *scopes) push() { s.marks = append(s.marks, len(s.names)) }

func (s *scopes) pop() {
	m := s.marks[len(s.marks)-1]
	s.marks = s.marks[:len(s.marks)-1]
	s.names = s.names[:m]
	s.vals = s.vals[:m]
}

func (s *scopes) declare(name string, v vm.Value) {
	s.names = append(s.names, name)
	s.vals = append(s.vals, v)
}

func (s *scopes) get(name string) (vm.Value, bool) {
	for i := len(s.names) - 1; i >= 0; i-- {
		if s.names[i] == name {
			return s.vals[i], true
		}
	}
	return vm.Value{}, false
}

func (s *scopes) set(name string, v vm.Value) bool {
	for i := len(s.names) - 1; i >= 0; i-- {
		if s.names[i] == name {
			s.vals[i] = v
			return true
		}
	}
	return false
}

type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlReturn
)

// Invoke implements vm.CompiledMethod.
func (c *Compiled) Invoke(args []vm.Value) (vm.Value, error) {
	sc := &scopes{}
	sc.push()
	i := 0
	if c.F.HasReceiver {
		sc.declare("this", args[0])
		i = 1
	}
	for j, p := range c.F.Params {
		sc.declare(p.Name, args[i+j])
	}
	k, v, err := c.execStmt(sc, c.F.Body)
	if err != nil {
		return vm.Value{}, err
	}
	if k == ctrlReturn {
		return v, nil
	}
	return vm.Value{}, nil
}

func (c *Compiled) execSeq(sc *scopes, n *Node) (ctrl, vm.Value, error) {
	sc.push()
	defer sc.pop()
	for _, k := range n.Kids {
		kc, v, err := c.execStmt(sc, k)
		if err != nil || kc == ctrlReturn {
			return kc, v, err
		}
	}
	return ctrlNext, vm.Value{}, nil
}

func (c *Compiled) execStmt(sc *scopes, n *Node) (ctrl, vm.Value, error) {
	if err := c.Env.Step(); err != nil {
		return ctrlNext, vm.Value{}, err
	}
	switch n.Kind {
	case NSeq:
		return c.execSeq(sc, n)
	case NNop:
		return ctrlNext, vm.Value{}, nil
	case NDecl:
		v, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		sc.declare(n.Name, v)
		return ctrlNext, vm.Value{}, nil
	case NAssignVar:
		v, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		if !sc.set(n.Name, v) {
			// A variable materialized by an optimization (e.g. scalar
			// replacement) may not have an explicit declaration on every
			// path; bind it in the innermost scope.
			sc.declare(n.Name, v)
		}
		return ctrlNext, vm.Value{}, nil
	case NAssignField:
		if n.Static {
			v, err := c.eval(sc, n.Kids[0])
			if err != nil {
				return ctrlNext, vm.Value{}, err
			}
			c.Env.SetStatic(n.Class, n.Name, v)
			return ctrlNext, vm.Value{}, nil
		}
		recv, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		v, err := c.eval(sc, n.Kids[1])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		if recv.Kind != vm.KObj || recv.Obj == nil {
			return ctrlNext, vm.Value{}, &vm.Thrown{Code: bytecode.ExcNullPointer}
		}
		recv.Obj.Fields[n.Name] = v
		return ctrlNext, vm.Value{}, nil
	case NAssignIndex:
		arr, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		idx, err := c.eval(sc, n.Kids[1])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		v, err := c.eval(sc, n.Kids[2])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		if arr.Kind != vm.KArr || arr.Arr == nil {
			return ctrlNext, vm.Value{}, &vm.Thrown{Code: bytecode.ExcNullPointer}
		}
		if idx.I < 0 || idx.I >= int64(len(arr.Arr.Elems)) {
			return ctrlNext, vm.Value{}, &vm.Thrown{Code: bytecode.ExcArrayBounds}
		}
		arr.Arr.Elems[idx.I] = int64(int32(v.I))
		return ctrlNext, vm.Value{}, nil
	case NIf:
		cond, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		if cond.Bool() {
			return c.execStmt(sc, n.Kids[1])
		}
		if len(n.Kids) > 2 {
			return c.execStmt(sc, n.Kids[2])
		}
		return ctrlNext, vm.Value{}, nil
	case NFor:
		return c.execFor(sc, n)
	case NWhile:
		for {
			cond, err := c.eval(sc, n.Kids[0])
			if err != nil {
				return ctrlNext, vm.Value{}, err
			}
			if !cond.Bool() {
				return ctrlNext, vm.Value{}, nil
			}
			k, v, err := c.execStmt(sc, n.Kids[1])
			if err != nil || k == ctrlReturn {
				return k, v, err
			}
		}
	case NSync:
		return c.execSync(sc, n)
	case NReturn:
		if len(n.Kids) == 0 {
			return ctrlReturn, vm.Value{}, nil
		}
		v, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		return ctrlReturn, v, nil
	case NThrow:
		v, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		return ctrlNext, vm.Value{}, &vm.Thrown{Code: v.I}
	case NTry:
		k, v, err := c.execStmt(sc, n.Kids[0])
		if thr, ok := err.(*vm.Thrown); ok {
			sc.push()
			sc.declare(n.Name, vm.IntVal(thr.Code))
			k, v, err = c.execStmt(sc, n.Kids[1])
			sc.pop()
		}
		return k, v, err
	case NPrint:
		v, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		c.Env.Print(v)
		return ctrlNext, vm.Value{}, nil
	case NExprStmt:
		_, err := c.eval(sc, n.Kids[0])
		return ctrlNext, vm.Value{}, err
	case NUncommonTrap:
		// A compiled speculation failed at runtime: log the trap, count
		// it, and interpret the original statement inline. Too many
		// traps invalidate the compiled code so the method recompiles
		// without the speculation.
		c.trapCount++
		profile.EmitBehavior(c.Log, profile.FlagTraceDeoptimization, profile.LineUncommonTrap,
			"Uncommon trap occurred in %s reason=%s", c.F.Key(), n.Name)
		c.Cov.Hit("c2.traps.fire")
		c.Cov.Hit("runtime.deopt")
		if c.trapLimit > 0 && c.trapCount >= c.trapLimit {
			c.Env.InvalidateCode(c.F.Key())
		}
		return c.execStmt(sc, n.Kids[0])
	}
	return ctrlNext, vm.Value{}, fmt.Errorf("jit: exec: bad statement kind %v", n.Kind)
}

func (c *Compiled) execFor(sc *scopes, n *Node) (ctrl, vm.Value, error) {
	from, err := c.eval(sc, n.Kids[0])
	if err != nil {
		return ctrlNext, vm.Value{}, err
	}
	sc.push()
	defer sc.pop()
	sc.declare(n.Name, vm.IntVal(from.I))
	slot := len(sc.vals) - 1 // the loop variable's stack slot is stable
	for {
		if err := c.Env.Step(); err != nil {
			return ctrlNext, vm.Value{}, err
		}
		to, err := c.eval(sc, n.Kids[1])
		if err != nil {
			return ctrlNext, vm.Value{}, err
		}
		if sc.vals[slot].I >= to.I {
			return ctrlNext, vm.Value{}, nil
		}
		k, v, err := c.execStmt(sc, n.Kids[2])
		if err != nil || k == ctrlReturn {
			return k, v, err
		}
		sc.vals[slot] = vm.IntVal(sc.vals[slot].I + n.Step)
	}
}

func (c *Compiled) execSync(sc *scopes, n *Node) (ctrl, vm.Value, error) {
	mon, err := c.eval(sc, n.Kids[0])
	if err != nil {
		return ctrlNext, vm.Value{}, err
	}
	if err := c.Env.MonitorEnter(mon); err != nil {
		return ctrlNext, vm.Value{}, err
	}
	k, v, err := c.execStmt(sc, n.Kids[1])
	if err != nil {
		if _, isThrown := err.(*vm.Thrown); isThrown && n.NoExcCleanup {
			// Seeded defect: the compiled exception path omits the
			// monitor release (Listing 1's hazard). The monitor leaks.
			return k, v, err
		}
		if exitErr := c.Env.MonitorExit(mon); exitErr != nil {
			return ctrlNext, vm.Value{}, exitErr
		}
		return k, v, err
	}
	if exitErr := c.Env.MonitorExit(mon); exitErr != nil {
		return ctrlNext, vm.Value{}, exitErr
	}
	return k, v, nil
}

func (c *Compiled) eval(sc *scopes, n *Node) (vm.Value, error) {
	if err := c.Env.Step(); err != nil {
		return vm.Value{}, err
	}
	switch n.Kind {
	case NConstInt:
		if n.IsLong {
			return vm.LongVal(n.IVal), nil
		}
		return vm.IntVal(n.IVal), nil
	case NConstBool:
		return vm.BoolVal(n.IVal != 0), nil
	case NConstStr:
		return vm.StrVal(n.SVal), nil
	case NVar:
		v, ok := sc.get(n.Name)
		if !ok {
			return vm.Value{}, fmt.Errorf("jit: exec: unbound variable %q in %s", n.Name, c.F.Key())
		}
		return v, nil
	case NFieldGet:
		if n.Static {
			return c.Env.GetStatic(n.Class, n.Name), nil
		}
		recv, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		if recv.Kind != vm.KObj || recv.Obj == nil {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcNullPointer}
		}
		return recv.Obj.Fields[n.Name], nil
	case NBinary:
		return c.evalBinary(sc, n)
	case NUnary:
		x, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		switch n.UnOp {
		case lang.OpNeg:
			return vm.Arith(func(a, _ int64) int64 { return -a }, x, x), nil
		case lang.OpBitNot:
			return vm.Arith(func(a, _ int64) int64 { return ^a }, x, x), nil
		case lang.OpNot:
			return vm.BoolVal(x.I == 0), nil
		}
	case NCall, NReflectCall:
		recvNode, argNodes := CallArgs(n)
		recv := vm.NullVal()
		if recvNode != nil {
			var err error
			recv, err = c.eval(sc, recvNode)
			if err != nil {
				return vm.Value{}, err
			}
		}
		args := make([]vm.Value, len(argNodes))
		for i, a := range argNodes {
			v, err := c.eval(sc, a)
			if err != nil {
				return vm.Value{}, err
			}
			args[i] = v
		}
		ref := bytecode.MethodRef{Class: n.Class, Method: n.Name, Static: n.Static, NArgs: len(argNodes)}
		if n.Kind == NReflectCall {
			c.Cov.Hit("runtime.reflection")
			for i := 0; i < 8; i++ {
				if err := c.Env.Step(); err != nil {
					return vm.Value{}, err
				}
			}
		}
		return c.Env.Call(ref, recv, args)
	case NReflectGet:
		c.Cov.Hit("runtime.reflection")
		if n.Static {
			return c.Env.GetStatic(n.Class, n.Name), nil
		}
		recv, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		if recv.Kind != vm.KObj || recv.Obj == nil {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcNullPointer}
		}
		return recv.Obj.Fields[n.Name], nil
	case NNew:
		return c.Env.NewObject(n.Class), nil
	case NNewArray:
		l, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		return c.Env.NewArray(l.I), nil
	case NIndex:
		arr, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		idx, err := c.eval(sc, n.Kids[1])
		if err != nil {
			return vm.Value{}, err
		}
		if arr.Kind != vm.KArr || arr.Arr == nil {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcNullPointer}
		}
		if idx.I < 0 || idx.I >= int64(len(arr.Arr.Elems)) {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcArrayBounds}
		}
		return vm.IntVal(arr.Arr.Elems[idx.I]), nil
	case NBox:
		x, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		return c.Env.NewBox(x.I), nil
	case NUnbox:
		x, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		if x.Kind != vm.KBox || x.Obj == nil {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcNullPointer}
		}
		return vm.IntVal(x.Obj.BoxVal), nil
	case NWiden:
		x, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		return vm.LongVal(x.I), nil
	case NNullCheck:
		x, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		if x.Kind == vm.KNull {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcNullPointer}
		}
		return x, nil
	case NCond:
		cond, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		if cond.Bool() {
			return c.eval(sc, n.Kids[1])
		}
		return c.eval(sc, n.Kids[2])
	}
	return vm.Value{}, fmt.Errorf("jit: exec: bad expression kind %v", n.Kind)
}

func (c *Compiled) evalBinary(sc *scopes, n *Node) (vm.Value, error) {
	op := n.BinOp
	// Short-circuit logical operators must not evaluate the RHS eagerly.
	if op == lang.OpLAnd || op == lang.OpLOr {
		l, err := c.eval(sc, n.Kids[0])
		if err != nil {
			return vm.Value{}, err
		}
		if op == lang.OpLAnd && !l.Bool() {
			return vm.BoolVal(false), nil
		}
		if op == lang.OpLOr && l.Bool() {
			return vm.BoolVal(true), nil
		}
		r, err := c.eval(sc, n.Kids[1])
		if err != nil {
			return vm.Value{}, err
		}
		return vm.BoolVal(r.Bool()), nil
	}
	l, err := c.eval(sc, n.Kids[0])
	if err != nil {
		return vm.Value{}, err
	}
	r, err := c.eval(sc, n.Kids[1])
	if err != nil {
		return vm.Value{}, err
	}
	switch op {
	case lang.OpAdd:
		return vm.Arith(func(a, b int64) int64 { return a + b }, l, r), nil
	case lang.OpSub:
		return vm.Arith(func(a, b int64) int64 { return a - b }, l, r), nil
	case lang.OpMul:
		return vm.Arith(func(a, b int64) int64 { return a * b }, l, r), nil
	case lang.OpDiv:
		if r.I == 0 {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcArithmetic}
		}
		return vm.Arith(func(a, b int64) int64 { return a / b }, l, r), nil
	case lang.OpRem:
		if r.I == 0 {
			return vm.Value{}, &vm.Thrown{Code: bytecode.ExcArithmetic}
		}
		return vm.Arith(func(a, b int64) int64 { return a % b }, l, r), nil
	case lang.OpAnd:
		if l.Kind == vm.KBool {
			return vm.BoolVal(l.I != 0 && r.I != 0), nil
		}
		return vm.Arith(func(a, b int64) int64 { return a & b }, l, r), nil
	case lang.OpOr:
		if l.Kind == vm.KBool {
			return vm.BoolVal(l.I != 0 || r.I != 0), nil
		}
		return vm.Arith(func(a, b int64) int64 { return a | b }, l, r), nil
	case lang.OpXor:
		if l.Kind == vm.KBool {
			return vm.BoolVal((l.I != 0) != (r.I != 0)), nil
		}
		return vm.Arith(func(a, b int64) int64 { return a ^ b }, l, r), nil
	case lang.OpShl:
		if l.Kind == vm.KLong {
			return vm.Arith(func(a, b int64) int64 { return a << uint(b&63) }, l, r), nil
		}
		return vm.Arith(func(a, b int64) int64 { return int64(int32(a) << uint(b&31)) }, l, r), nil
	case lang.OpShr:
		if l.Kind == vm.KLong {
			return vm.Arith(func(a, b int64) int64 { return a >> uint(b&63) }, l, r), nil
		}
		return vm.Arith(func(a, b int64) int64 { return int64(int32(a) >> uint(b&31)) }, l, r), nil
	case lang.OpEq, lang.OpNe:
		eq := false
		if l.IsRef() && r.IsRef() {
			eq = vm.SameRef(l, r)
		} else {
			eq = l.I == r.I
		}
		if op == lang.OpNe {
			eq = !eq
		}
		return vm.BoolVal(eq), nil
	case lang.OpLt:
		return vm.BoolVal(l.I < r.I), nil
	case lang.OpLe:
		return vm.BoolVal(l.I <= r.I), nil
	case lang.OpGt:
		return vm.BoolVal(l.I > r.I), nil
	case lang.OpGe:
		return vm.BoolVal(l.I >= r.I), nil
	}
	return vm.Value{}, fmt.Errorf("jit: exec: bad binary op %v", op)
}
