package jit

import (
	"fmt"

	"repro/internal/lang"
)

// Lower translates a checked method's source tree into JIT IR. It is the
// JIT front end (HotSpot's "ideal graph building" analogue); lowering
// failures abort compilation with a bailout error.
func Lower(class *lang.Class, m *lang.Method) (*Func, error) {
	body, err := lowerBlock(m.Body)
	if err != nil {
		return nil, fmt.Errorf("jit: lower %s.%s: %w", class.Name, m.Name, err)
	}
	return &Func{
		Class:        class.Name,
		Name:         m.Name,
		Params:       append([]lang.Param(nil), m.Params...),
		HasReceiver:  !m.Static,
		Ret:          m.Ret,
		Synchronized: m.Synchronized,
		Body:         body,
	}, nil
}

func lowerBlock(b *lang.Block) (*Node, error) {
	seq := &Node{Kind: NSeq}
	if b == nil {
		return seq, nil
	}
	for _, s := range b.Stmts {
		n, err := lowerStmt(s)
		if err != nil {
			return nil, err
		}
		seq.Kids = append(seq.Kids, n)
	}
	return seq, nil
}

func lowerStmt(s lang.Stmt) (*Node, error) {
	switch n := s.(type) {
	case *lang.VarDecl:
		init, err := lowerExpr(n.Init)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NDecl, Name: n.Name, Ty: n.Ty, Kids: []*Node{init}}, nil
	case *lang.Assign:
		val, err := lowerExpr(n.Value)
		if err != nil {
			return nil, err
		}
		switch t := n.Target.(type) {
		case *lang.VarRef:
			return &Node{Kind: NAssignVar, Name: t.Name, Ty: t.ResultType(), Kids: []*Node{val}}, nil
		case *lang.FieldRef:
			if t.Recv == nil {
				return &Node{Kind: NAssignField, Class: t.Class, Name: t.Name, Static: true, Kids: []*Node{val}}, nil
			}
			recv, err := lowerExpr(t.Recv)
			if err != nil {
				return nil, err
			}
			return &Node{Kind: NAssignField, Class: t.Class, Name: t.Name, Kids: []*Node{recv, val}}, nil
		case *lang.Index:
			arr, err := lowerExpr(t.Arr)
			if err != nil {
				return nil, err
			}
			idx, err := lowerExpr(t.Idx)
			if err != nil {
				return nil, err
			}
			return &Node{Kind: NAssignIndex, Kids: []*Node{arr, idx, val}}, nil
		}
		return nil, fmt.Errorf("bad assignment target %T", n.Target)
	case *lang.ExprStmt:
		e, err := lowerExpr(n.E)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NExprStmt, Kids: []*Node{e}}, nil
	case *lang.If:
		cond, err := lowerExpr(n.Cond)
		if err != nil {
			return nil, err
		}
		then, err := lowerBlock(n.Then)
		if err != nil {
			return nil, err
		}
		kids := []*Node{cond, then}
		if n.Else != nil {
			els, err := lowerBlock(n.Else)
			if err != nil {
				return nil, err
			}
			kids = append(kids, els)
		}
		return &Node{Kind: NIf, Kids: kids}, nil
	case *lang.For:
		from, err := lowerExpr(n.From)
		if err != nil {
			return nil, err
		}
		to, err := lowerExpr(n.To)
		if err != nil {
			return nil, err
		}
		body, err := lowerBlock(n.Body)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NFor, Name: n.Var, Step: n.Step, Kids: []*Node{from, to, body}}, nil
	case *lang.While:
		cond, err := lowerExpr(n.Cond)
		if err != nil {
			return nil, err
		}
		body, err := lowerBlock(n.Body)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NWhile, Kids: []*Node{cond, body}}, nil
	case *lang.Sync:
		mon, err := lowerExpr(n.Monitor)
		if err != nil {
			return nil, err
		}
		body, err := lowerBlock(n.Body)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NSync, Kids: []*Node{mon, body}}, nil
	case *lang.Return:
		if n.E == nil {
			return &Node{Kind: NReturn}, nil
		}
		e, err := lowerExpr(n.E)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NReturn, Kids: []*Node{e}}, nil
	case *lang.Throw:
		e, err := lowerExpr(n.E)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NThrow, Kids: []*Node{e}}, nil
	case *lang.Try:
		body, err := lowerBlock(n.Body)
		if err != nil {
			return nil, err
		}
		catch, err := lowerBlock(n.Catch)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NTry, Name: n.CatchVar, Kids: []*Node{body, catch}}, nil
	case *lang.Print:
		e, err := lowerExpr(n.E)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NPrint, Kids: []*Node{e}}, nil
	case *lang.Block:
		return lowerBlock(n)
	}
	return nil, fmt.Errorf("unknown statement %T", s)
}

func lowerExpr(e lang.Expr) (*Node, error) {
	switch n := e.(type) {
	case nil:
		return nil, fmt.Errorf("nil expression")
	case *lang.IntLit:
		return &Node{Kind: NConstInt, IVal: n.V, IsLong: n.Ty.Kind == lang.KindLong, Ty: n.Ty}, nil
	case *lang.BoolLit:
		v := int64(0)
		if n.V {
			v = 1
		}
		return &Node{Kind: NConstBool, IVal: v, Ty: lang.Bool}, nil
	case *lang.StrLit:
		return &Node{Kind: NConstStr, SVal: n.V, Ty: lang.String}, nil
	case *lang.VarRef:
		return &Node{Kind: NVar, Name: n.Name, Ty: n.ResultType()}, nil
	case *lang.FieldRef:
		if n.Recv == nil {
			return &Node{Kind: NFieldGet, Class: n.Class, Name: n.Name, Static: true, Ty: n.ResultType()}, nil
		}
		recv, err := lowerExpr(n.Recv)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NFieldGet, Class: n.Class, Name: n.Name, Ty: n.ResultType(), Kids: []*Node{recv}}, nil
	case *lang.Binary:
		l, err := lowerExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := lowerExpr(n.R)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NBinary, BinOp: n.Op, Ty: n.ResultType(), Kids: []*Node{l, r}}, nil
	case *lang.Unary:
		x, err := lowerExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NUnary, UnOp: n.Op, Ty: n.ResultType(), Kids: []*Node{x}}, nil
	case *lang.Call:
		return lowerCall(NCall, n.Class, n.Method, n.Recv, n.Args, n.ResultType())
	case *lang.ReflectCall:
		return lowerCall(NReflectCall, n.Class, n.Method, n.Recv, n.Args, n.ResultType())
	case *lang.ReflectFieldGet:
		if n.Recv == nil {
			return &Node{Kind: NReflectGet, Class: n.Class, Name: n.Name, Static: true, Ty: n.ResultType()}, nil
		}
		recv, err := lowerExpr(n.Recv)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NReflectGet, Class: n.Class, Name: n.Name, Ty: n.ResultType(), Kids: []*Node{recv}}, nil
	case *lang.New:
		return &Node{Kind: NNew, Class: n.Class, Ty: n.ResultType()}, nil
	case *lang.NewArray:
		l, err := lowerExpr(n.Len)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NNewArray, Ty: lang.IntArray, Kids: []*Node{l}}, nil
	case *lang.Index:
		arr, err := lowerExpr(n.Arr)
		if err != nil {
			return nil, err
		}
		idx, err := lowerExpr(n.Idx)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NIndex, Ty: lang.Int, Kids: []*Node{arr, idx}}, nil
	case *lang.Box:
		x, err := lowerExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NBox, Ty: lang.IntBox, Kids: []*Node{x}}, nil
	case *lang.Unbox:
		x, err := lowerExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NUnbox, Ty: lang.Int, Kids: []*Node{x}}, nil
	case *lang.Widen:
		x, err := lowerExpr(n.X)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NWiden, Ty: lang.Long, Kids: []*Node{x}}, nil
	case *lang.Cond:
		c, err := lowerExpr(n.C)
		if err != nil {
			return nil, err
		}
		t, err := lowerExpr(n.T)
		if err != nil {
			return nil, err
		}
		f, err := lowerExpr(n.F)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NCond, Ty: n.ResultType(), Kids: []*Node{c, t, f}}, nil
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func lowerCall(kind Kind, class, method string, recv lang.Expr, args []lang.Expr, ty lang.Type) (*Node, error) {
	n := &Node{Kind: kind, Class: class, Name: method, Ty: ty, Static: recv == nil}
	if recv != nil {
		r, err := lowerExpr(recv)
		if err != nil {
			return nil, err
		}
		n.Kids = append(n.Kids, r)
	}
	for _, a := range args {
		an, err := lowerExpr(a)
		if err != nil {
			return nil, err
		}
		n.Kids = append(n.Kids, an)
	}
	return n, nil
}

// CallArgs splits an NCall/NReflectCall node's kids into receiver (nil
// for static) and arguments.
func CallArgs(n *Node) (recv *Node, args []*Node) {
	if n.Static {
		return nil, n.Kids
	}
	return n.Kids[0], n.Kids[1:]
}
