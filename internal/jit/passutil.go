package jit

import (
	"fmt"
	"strings"
)

// forEachSeq visits every NSeq node in the tree (including nested bodies)
// and lets fn rewrite its Kids slice in place.
func forEachSeq(root *Node, fn func(seq *Node)) {
	root.Walk(func(n *Node) bool {
		if n.Kind == NSeq {
			fn(n)
		}
		return true
	})
}

// rewriteExprs applies fn bottom-up to every node in the tree, replacing
// each node with fn's result. Statement structure is preserved by fn
// returning statements unchanged.
func rewriteExprs(n *Node, fn func(*Node) *Node) *Node {
	if n == nil {
		return nil
	}
	for i, k := range n.Kids {
		n.Kids[i] = rewriteExprs(k, fn)
	}
	return fn(n)
}

// substVar replaces every read of the named variable with a clone of
// repl, returning the (possibly replaced) root.
func substVar(n *Node, name string, repl *Node) *Node {
	return rewriteExprs(n, func(m *Node) *Node {
		if m.Kind == NVar && m.Name == name {
			return repl.Clone()
		}
		return m
	})
}

// countVarReads returns how many times the subtree reads the variable.
func countVarReads(n *Node, name string) int {
	c := 0
	n.Walk(func(m *Node) bool {
		if m.Kind == NVar && m.Name == name {
			c++
		}
		return true
	})
	return c
}

// renameLocals rewrites all declarations and uses of method-local names
// in the subtree by applying the mapping (used by statement inlining to
// avoid capture).
func renameLocals(n *Node, mapping map[string]string) {
	n.Walk(func(m *Node) bool {
		switch m.Kind {
		case NVar, NDecl, NAssignVar:
			if nn, ok := mapping[m.Name]; ok {
				m.Name = nn
			}
		case NFor, NTry:
			if nn, ok := mapping[m.Name]; ok {
				m.Name = nn
			}
		}
		return true
	})
}

// exprKey serializes an expression subtree into a canonical string used
// as a value-numbering key.
func exprKey(n *Node) string {
	var b strings.Builder
	writeKey(&b, n)
	return b.String()
}

func writeKey(b *strings.Builder, n *Node) {
	if n == nil {
		b.WriteString("_")
		return
	}
	switch n.Kind {
	case NConstInt:
		fmt.Fprintf(b, "i%d", n.IVal)
		if n.IsLong {
			b.WriteString("L")
		}
	case NConstBool:
		fmt.Fprintf(b, "b%d", n.IVal)
	case NConstStr:
		fmt.Fprintf(b, "s%q", n.SVal)
	case NVar:
		fmt.Fprintf(b, "v(%s)", n.Name)
	case NFieldGet:
		fmt.Fprintf(b, "f(%s.%s,", n.Class, n.Name)
		if len(n.Kids) > 0 {
			writeKey(b, n.Kids[0])
		}
		b.WriteString(")")
	case NBinary:
		fmt.Fprintf(b, "(%d ", n.BinOp)
		writeKey(b, n.Kids[0])
		b.WriteString(" ")
		writeKey(b, n.Kids[1])
		b.WriteString(")")
	case NUnary:
		fmt.Fprintf(b, "(u%d ", n.UnOp)
		writeKey(b, n.Kids[0])
		b.WriteString(")")
	case NWiden:
		b.WriteString("(i2l ")
		writeKey(b, n.Kids[0])
		b.WriteString(")")
	case NCond:
		b.WriteString("(? ")
		for _, k := range n.Kids {
			writeKey(b, k)
			b.WriteString(" ")
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<%d:", n.Kind)
		for _, k := range n.Kids {
			writeKey(b, k)
			b.WriteString(" ")
		}
		fmt.Fprintf(b, "%s.%s>", n.Class, n.Name)
	}
}

// varsRead collects the set of variable names the subtree reads.
func varsRead(n *Node) map[string]bool {
	out := map[string]bool{}
	n.Walk(func(m *Node) bool {
		if m.Kind == NVar {
			out[m.Name] = true
		}
		return true
	})
	return out
}

// stmtCtx carries nesting context while walking statements.
type stmtCtx struct {
	SyncDepth int
	LoopDepth int
}

// walkStmtsCtx visits statement nodes with their sync/loop nesting depth.
// Expressions are not visited.
func walkStmtsCtx(n *Node, sc stmtCtx, fn func(*Node, stmtCtx)) {
	if n == nil || !n.Kind.IsStmt() {
		return
	}
	fn(n, sc)
	switch n.Kind {
	case NSeq:
		for _, k := range n.Kids {
			walkStmtsCtx(k, sc, fn)
		}
	case NIf:
		walkStmtsCtx(n.Kids[1], sc, fn)
		if len(n.Kids) > 2 {
			walkStmtsCtx(n.Kids[2], sc, fn)
		}
	case NFor:
		inner := sc
		inner.LoopDepth++
		walkStmtsCtx(n.Kids[2], inner, fn)
	case NWhile:
		inner := sc
		inner.LoopDepth++
		walkStmtsCtx(n.Kids[1], inner, fn)
	case NSync:
		inner := sc
		inner.SyncDepth++
		walkStmtsCtx(n.Kids[1], inner, fn)
	case NTry:
		walkStmtsCtx(n.Kids[0], sc, fn)
		walkStmtsCtx(n.Kids[1], sc, fn)
	case NUncommonTrap:
		walkStmtsCtx(n.Kids[0], sc, fn)
	}
}

// constTrip returns the trip count of a counted loop with constant
// bounds, or -1 when the bounds are not compile-time constants.
func constTrip(n *Node) int64 {
	if n.Kind != NFor {
		return -1
	}
	from, to := n.Kids[0], n.Kids[1]
	if from.Kind != NConstInt || to.Kind != NConstInt || from.IsLong || to.IsLong {
		return -1
	}
	if n.Step <= 0 {
		return -1
	}
	span := to.IVal - from.IVal
	if span <= 0 {
		return 0
	}
	return (span + n.Step - 1) / n.Step
}
