package jit

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/profile"
	"repro/internal/vm"
)

// Options tunes the compiler pipelines.
type Options struct {
	InlineBudgetC1 int  // node budget for C1 inlining (default 16)
	InlineBudgetC2 int  // node budget for C2 inlining (default 64)
	TrapLimit      int  // runtime traps before invalidation (default 2)
	Speculate      bool // insert uncommon traps (default true via New)
}

// DefaultOptions returns the production pipeline configuration.
func DefaultOptions() Options {
	return Options{InlineBudgetC1: 16, InlineBudgetC2: 64, TrapLimit: 2, Speculate: true}
}

// Compiler is the simulated JIT. It implements vm.Compiler: the machine
// hands it hot methods; it lowers, optimizes, and returns executable
// compiled code. Log, Cov, and Hook are shared per-execution channels.
type Compiler struct {
	Log  *profile.Recorder
	Cov  *coverage.Tracker
	Hook Hook
	Opt  Options

	// OnCompiled, if set, observes the finished compilation context
	// (the fuzzer's white-box test hook; production runs leave it nil).
	OnCompiled func(*Context)

	// Cache, when non-nil, reuses compilations across executions (and
	// across differential targets sharing the cache). It is consulted
	// only when Hook is nil or a CacheableHook; CacheSalt must identify
	// the program being run, since cache keys only add method, tier,
	// options, hook fingerprint, plan fingerprint, and deopt count on
	// top of it.
	Cache     *Cache
	CacheSalt string

	// Plan is the pass schedule driving compilation; nil selects the
	// fixed production pipeline (DefaultPlan). Callers must Validate
	// non-default plans before attaching them — Compile trusts the plan.
	Plan *Plan
}

// New returns a Compiler with default options.
func New(log *profile.Recorder, cov *coverage.Tracker, hook Hook) *Compiler {
	return &Compiler{Log: log, Cov: cov, Hook: hook, Opt: DefaultOptions()}
}

// Compile implements vm.Compiler.
func (c *Compiler) Compile(fn *bytecode.Function, tier vm.Tier, env vm.Env) (vm.CompiledMethod, error) {
	if fn.Source == nil {
		return nil, fmt.Errorf("jit: %s has no source tree (bailout)", fn.Key())
	}
	prog := env.Image().Program
	cl := prog.Class(fn.Class)
	if cl == nil {
		return nil, fmt.Errorf("jit: class %s not in image (bailout)", fn.Class)
	}

	// Cache probe. Hooks that cannot be fingerprinted (test hooks
	// injected via CompileHook) make compile output unpredictable, so
	// their presence bypasses the cache entirely.
	var ch CacheableHook
	useCache := c.Cache != nil
	if c.Hook != nil {
		ch, _ = c.Hook.(CacheableHook)
		if ch == nil {
			useCache = false
		}
	}
	plan := c.Plan
	if plan == nil {
		plan = DefaultPlan()
	}
	var key string
	if useCache {
		hookFP := ""
		if ch != nil {
			hookFP = ch.CacheFingerprint()
		}
		// The plan fingerprint isolates plans from each other: without
		// it, plan A's compiled method would replay under plan B
		// (pinned by TestCompileCachePlanIsolation).
		key = fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%+v\x00%s\x00%s",
			c.CacheSalt, fn.Key(), tier, env.DeoptCount(fn.Key()), c.Opt, hookFP, plan.Fingerprint())
		if e := c.Cache.get(key); e != nil {
			return c.replay(e, env, ch), nil
		}
	}

	f, err := Lower(cl, fn.Source)
	if err != nil {
		return nil, err
	}
	ctx := &Context{Fn: f, Tier: tier, Log: c.Log, Cov: c.Cov, Env: env, Hook: c.Hook}
	var capture *captureEmitter
	var coverRec []string
	trigBase := 0
	if useCache {
		capture = &captureEmitter{next: c.Log}
		ctx.Log = capture
		ctx.coverRec = &coverRec
		if ch != nil {
			trigBase = len(ch.TriggeredIDs())
		}
	}

	ctx.Emitf(profile.FlagPrintCompilation, "%4d %s  %s::%s (%d nodes)",
		env.DeoptCount(fn.Key()), tier, fn.Class, fn.Name, f.Body.CountNodes())

	passErr := c.runTier(ctx, plan.Tier(tier))
	if passErr != nil {
		// Failed compilations (compiler crashes) are never cached: the
		// hook's crash path re-fires identically on every recompile, so
		// skipping them keeps cache hits exactly equivalent to misses.
		return nil, passErr
	}

	// Final hook checkpoint: aggregate interaction predicates (pairs,
	// depth thresholds) fire here with the whole compilation visible.
	if ctx.Hook != nil {
		if err := ctx.Hook.Observe(ctx, Event{Pass: "finish", Behavior: BehaviorNone,
			Detail: fn.Key(), Prov: ctx.ProvUnion()}); err != nil {
			return nil, err
		}
	}
	if c.OnCompiled != nil {
		c.OnCompiled(ctx)
	}
	ctx.Emitf(profile.FlagPrintAssembly, "  # {method} %s::%s tier=%s compiled", fn.Class, fn.Name, tier)

	if useCache {
		var trig []string
		if ch != nil {
			ids := ch.TriggeredIDs()
			trig = append([]string(nil), ids[trigBase:]...)
		}
		c.Cache.put(key, &cacheEntry{fn: f, lines: capture.lines, cover: coverRec, trig: trig, ctx: ctx})
	}
	return &Compiled{
		F:   f,
		Env: env,
		Log: c.Log,
		Cov: &covSink{hit: func(name string) { c.Cov.Hit(name) }},

		trapLimit: c.Opt.TrapLimit,
	}, nil
}

// replay re-applies a cached compilation's side effects — profile lines
// (re-gated by the current recorder), coverage regions, bug-trigger
// state transitions, and the OnCompiled observation — and wraps the
// shared optimized IR in a fresh Compiled carrying this execution's
// runtime state (trap counters, env).
func (c *Compiler) replay(e *cacheEntry, env vm.Env, ch CacheableHook) vm.CompiledMethod {
	for _, l := range e.lines {
		c.Log.AppendLine(l.flag, l.behaviors, l.text)
	}
	for _, name := range e.cover {
		c.Cov.Hit(name)
	}
	if ch != nil && len(e.trig) > 0 {
		ch.ReplayTriggered(e.trig)
	}
	if c.OnCompiled != nil {
		ctx := *e.ctx
		ctx.Env = env
		ctx.Log = c.Log
		c.OnCompiled(&ctx)
	}
	return &Compiled{
		F:   e.fn,
		Env: env,
		Log: c.Log,
		Cov: &covSink{hit: func(name string) { c.Cov.Hit(name) }},

		trapLimit: c.Opt.TrapLimit,
	}
}

// runTier drives one tier's compilation from its plan. The structural
// stages — IR build/parse coverage, the exception-table scan, the loop
// tree, codegen — are not passes and not plannable: they bracket every
// compilation of the tier, exactly as the fixed pipelines bracketed
// them. Only the optimization schedule between them is data.
//
// The default C2 schedule's ordering is deliberate and load-bearing for
// interactions:
//
//	parse -> dereflect -> inline -> EA -> lock elision/nesting ->
//	scalar replacement -> autobox -> GVN+algebra -> loop opts
//	(peel, unswitch, unroll) -> lock coarsening (macro expansion)
//	-> iterative GVN/algebra/RSE/DCE -> traps -> codegen
//
// Unrolling runs before coarsening so that unrolled synchronized bodies
// become adjacent regions coarsening will merge — the JDK-8312744
// interaction chain. Fuzzed plans deliberately break orderings like
// this (while preserving hard preconditions) to reach the
// ordering-sensitive bug class the fixed schedule provably cannot.
func (c *Compiler) runTier(ctx *Context, tp *TierPlan) error {
	if ctx.Tier == vm.TierC1 {
		ctx.Cover("c1.build")
		ctx.Cover("c1.profiling")
		defer func() {
			ctx.Cover("c1.codegen")
			ctx.Cover("c1.runtime_stubs")
		}()
		hasExc := false
		ctx.Fn.Body.Walk(func(n *Node) bool {
			if n.Kind == NTry || n.Kind == NThrow {
				hasExc = true
			}
			return true
		})
		if hasExc {
			ctx.Cover("c1.exceptions")
		}
	} else {
		ctx.Cover("c2.parse")
		ctx.Cover("c2.idealize")
		defer func() {
			ctx.Cover("c2.codegen")
			ctx.Cover("c2.regalloc")
			ctx.Cover("c2.macro.expand")
		}()
		coverLoopTree(ctx)
	}

	for _, name := range tp.Front {
		if err := passTable[name].run(c, ctx); err != nil {
			return err
		}
	}
	// The loop iterates to a fixpoint (bounded), like HotSpot's
	// iterative GVN / repeated loop-opts rounds: each round's
	// transformations expose the next round's opportunities — an
	// unswitched twin unrolls, the unrolled synchronized copies coarsen,
	// the coarsened region exposes nested locks, DCE cleans up, and the
	// simplified tree may unroll further. Deeply nested and adjacent
	// structures (the fixed-mutation-point signature) feed this cascade;
	// scattered independent insertions exhaust it in one round.
	for round := 0; round < tp.Rounds; round++ {
		before := len(ctx.Events)
		for _, name := range tp.Loop {
			if err := passTable[name].run(c, ctx); err != nil {
				return err
			}
		}
		if len(ctx.Events) == before {
			break
		}
	}
	for _, name := range tp.Tail {
		if err := passTable[name].run(c, ctx); err != nil {
			return err
		}
	}
	return nil
}
