package jit

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// buildMachine compiles src and returns a machine with no JIT attached
// (tests drive Compiled values by hand).
func buildMachine(t *testing.T, src string) (*vm.Machine, *lang.Program) {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return vm.NewMachine(img, vm.Config{}), p
}

func compileByHand(t *testing.T, m *vm.Machine, p *lang.Program, key string) *Compiled {
	t.Helper()
	f, err := LowerProgramFunc(p, key)
	if err != nil {
		t.Fatal(err)
	}
	return &Compiled{F: f, Env: m, Log: profile.NewRecorder(profile.NoFlags()), Cov: &covSink{}, trapLimit: 2}
}

func TestExecutorSyncReleasesOnThrow(t *testing.T) {
	m, p := buildMachine(t, `
class T {
  static void main() { return; }
  int work(int i) {
    synchronized (this) {
      if (i > 0) { throw 9; }
    }
    return 0;
  }
}`)
	c := compileByHand(t, m, p, "T.work")
	recv := m.NewObject("T")
	_, err := c.Invoke([]vm.Value{recv, vm.IntVal(1)})
	thr, ok := err.(*vm.Thrown)
	if !ok || thr.Code != 9 {
		t.Fatalf("err = %v, want thrown 9", err)
	}
	if m.HeldMonitors() != 0 {
		t.Errorf("monitor leaked: %d held", m.HeldMonitors())
	}
}

func TestExecutorNoExcCleanupLeaks(t *testing.T) {
	m, p := buildMachine(t, `
class T {
  static void main() { return; }
  int work(int i) {
    synchronized (this) {
      if (i > 0) { throw 9; }
    }
    return 0;
  }
}`)
	c := compileByHand(t, m, p, "T.work")
	// Flip the defect flag on the sync node: the exception path must now
	// leak the monitor (the Listing 1 failure the oracles watch for).
	c.F.Body.Walk(func(n *Node) bool {
		if n.Kind == NSync {
			n.NoExcCleanup = true
		}
		return true
	})
	recv := m.NewObject("T")
	_, err := c.Invoke([]vm.Value{recv, vm.IntVal(1)})
	if _, ok := err.(*vm.Thrown); !ok {
		t.Fatalf("err = %v", err)
	}
	if m.HeldMonitors() != 1 {
		t.Errorf("held monitors = %d, want 1 (leak)", m.HeldMonitors())
	}
}

func TestExecutorTrapInvalidatesAfterLimit(t *testing.T) {
	m, p := buildMachine(t, `
class T {
  static void main() { return; }
  int work(int i) {
    int r = i;
    if (i > 5000) { r = r * 2; }
    return r;
  }
}`)
	f, err := LowerProgramFunc(p, "T.work")
	if err != nil {
		t.Fatal(err)
	}
	rec := profile.NewRecorder(profile.DefaultFlags())
	ctx := &Context{Fn: f, Tier: vm.TierC2, Log: rec, Cov: coverage.NewTracker(), Env: m}
	if err := passTraps(ctx); err != nil {
		t.Fatal(err)
	}
	c := &Compiled{F: f, Env: m, Log: rec, Cov: &covSink{}, trapLimit: 2}
	recv := m.NewObject("T")

	// Below the guard: no traps.
	if v, err := c.Invoke([]vm.Value{recv, vm.IntVal(10)}); err != nil || v.I != 10 {
		t.Fatalf("cold path: %v %v", v, err)
	}
	if m.DeoptCount("T.work") != 0 {
		t.Fatal("premature invalidation")
	}
	// Two trap hits reach the limit and invalidate; results stay correct
	// throughout (the trap interprets the guarded body inline).
	if v, _ := c.Invoke([]vm.Value{recv, vm.IntVal(6000)}); v.I != 12000 {
		t.Fatalf("trap path result = %d", v.I)
	}
	if m.DeoptCount("T.work") != 0 {
		t.Fatal("invalidated after a single trap")
	}
	if v, _ := c.Invoke([]vm.Value{recv, vm.IntVal(7000)}); v.I != 14000 {
		t.Fatalf("trap path result = %d", v.I)
	}
	if m.DeoptCount("T.work") != 1 {
		t.Errorf("DeoptCount = %d, want 1 after %d traps", m.DeoptCount("T.work"), 2)
	}
}

func TestExecutorNullCheckThrows(t *testing.T) {
	m, _ := buildMachine(t, `class T { static void main() { return; } }`)
	c := &Compiled{F: &Func{Class: "T", Name: "synth", Ret: lang.Int,
		Body: Seq(&Node{Kind: NReturn, Kids: []*Node{
			{Kind: NNullCheck, Kids: []*Node{{Kind: NVar, Name: "x", Ty: lang.ObjectType("T")}}},
		}}),
		Params: []lang.Param{{Name: "x", Ty: lang.ObjectType("T")}},
	}, Env: m, Cov: &covSink{}}
	if _, err := c.Invoke([]vm.Value{vm.NullVal()}); err == nil {
		t.Fatal("null check did not throw")
	}
	obj := m.NewObject("T")
	if v, err := c.Invoke([]vm.Value{obj}); err != nil || v.Obj != obj.Obj {
		t.Fatalf("non-null pass-through broken: %v %v", v, err)
	}
}

func TestExecutorScopesShadowing(t *testing.T) {
	m, p := buildMachine(t, `
class T {
  static void main() { return; }
  int work(int i) {
    int x = 1;
    for (int k = 0; k < 3; k += 1) {
      int x2 = x + 10;
      x = x2;
    }
    return x;
  }
}`)
	c := compileByHand(t, m, p, "T.work")
	v, err := c.Invoke([]vm.Value{m.NewObject("T"), vm.IntVal(0)})
	if err != nil || v.I != 31 {
		t.Fatalf("got %v %v, want 31", v, err)
	}
}

func TestExecutorWhileAndConditional(t *testing.T) {
	m, p := buildMachine(t, `
class T {
  static void main() { return; }
  int work(int i) {
    int n = i;
    int steps = 0;
    while (n > 1) {
      n = (n & 1) == 0 ? n / 2 : 3 * n + 1;
      steps = steps + 1;
    }
    return steps;
  }
}`)
	c := compileByHand(t, m, p, "T.work")
	v, err := c.Invoke([]vm.Value{m.NewObject("T"), vm.IntVal(6)})
	if err != nil || v.I != 8 { // 6→3→10→5→16→8→4→2→1
		t.Fatalf("collatz(6) steps = %v (err %v), want 8", v, err)
	}
}
