package jit

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

func compileImg(t *testing.T, src string) *bytecode.Image {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatalf("Check: %v", err)
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := bytecode.Verify(img); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return img
}

// runBoth executes src on the pure interpreter and on the JIT-enabled
// machine (aggressive thresholds) and returns both results plus the
// observed compilation contexts.
func runBoth(t *testing.T, src string) (ref, opt *vm.Result, ctxs []*Context) {
	t.Helper()
	img1 := compileImg(t, src)
	ref = vm.NewMachine(img1, vm.Config{}).Run()

	img2 := compileImg(t, src)
	rec := profile.NewRecorder(profile.DefaultFlags())
	cov := coverage.NewTracker()
	comp := New(rec, cov, nil)
	comp.OnCompiled = func(c *Context) { ctxs = append(ctxs, c) }
	opt = vm.NewMachine(img2, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp}).Run()
	return ref, opt, ctxs
}

// assertAgree fails the test when optimized execution diverges from the
// reference interpreter.
func assertAgree(t *testing.T, src string) (opt *vm.Result, ctxs []*Context) {
	t.Helper()
	ref, opt, ctxs := runBoth(t, src)
	if ref.Crashed() {
		t.Fatalf("reference crashed: %v", ref.Crash)
	}
	if opt.Crashed() {
		t.Fatalf("optimized crashed: %v", opt.Crash)
	}
	if ref.OutputString() != opt.OutputString() {
		t.Fatalf("miscompilation:\n-- interpreter --\n%s\n-- compiled --\n%s", ref.OutputString(), opt.OutputString())
	}
	return opt, ctxs
}

func totalCount(ctxs []*Context, b profile.Behavior) int64 {
	var n int64
	for _, c := range ctxs {
		n += c.Count(b)
	}
	return n
}

const hotLoopTemplate = `
class T {
  int f;
  static int sf;
  static void main() {
    T t = new T();
    t.f = 3;
    long acc = 0;
    for (int i = 0; i < 3000; i += 1) {
      acc = acc + t.work(i);
    }
    print(acc);
  }
  int work(int i) {
    BODY
    return r;
  }
}
`

func hotProgram(body string) string {
	return strings.Replace(hotLoopTemplate, "BODY", body, 1)
}

func TestJITAgreesOnArithmetic(t *testing.T) {
	opt, _ := assertAgree(t, hotProgram(`
    int r = i * 3 + (i % 7) - (i >> 2);
    r = r ^ (i << 1);
  `))
	if opt.Tiers["T.work"] != vm.TierC2 {
		t.Errorf("T.work tier = %v, want C2", opt.Tiers["T.work"])
	}
}

func TestJITAgreesOnLoops(t *testing.T) {
	_, ctxs := assertAgree(t, hotProgram(`
    int r = 0;
    for (int k = 0; k < 6; k += 1) {
      r = r + k * i;
    }
    for (int k2 = 0; k2 < 32; k2 += 1) {
      r = r + k2;
    }
  `))
	if totalCount(ctxs, profile.BUnroll) == 0 {
		t.Error("expected unroll events")
	}
	if totalCount(ctxs, profile.BPreMainPost) == 0 {
		t.Error("expected pre/main/post events for the 32-trip loop")
	}
}

func TestJITAgreesOnLoopPeel(t *testing.T) {
	_, ctxs := assertAgree(t, hotProgram(`
    int r = 0;
    for (int k = 0; k < 9; k += 1) {
      if (k == 0) {
        r = r + 100;
      }
      r = r + k;
    }
  `))
	if totalCount(ctxs, profile.BPeel) == 0 {
		t.Error("expected peel events")
	}
}

func TestJITAgreesOnLoopUnswitch(t *testing.T) {
	_, ctxs := assertAgree(t, hotProgram(`
    int r = 0;
    boolean flag = i % 2 == 0;
    for (int k = 0; k < 40; k += 1) {
      if (flag) {
        r = r + k;
      } else {
        r = r - k;
      }
    }
  `))
	if totalCount(ctxs, profile.BUnswitch) == 0 {
		t.Error("expected unswitch events")
	}
}

func TestJITAgreesOnLocks(t *testing.T) {
	opt, ctxs := assertAgree(t, hotProgram(`
    int r = 0;
    synchronized (this) {
      r = r + i;
    }
    synchronized (this) {
      r = r + 1;
    }
    synchronized (this) {
      synchronized (this) {
        r = r + 2;
      }
    }
  `))
	if totalCount(ctxs, profile.BLockCoarsen) == 0 {
		t.Error("expected lock coarsening events")
	}
	if totalCount(ctxs, profile.BNestedLockElim) == 0 {
		t.Error("expected nested lock elimination events")
	}
	if opt.MonitorLeaks != 0 {
		t.Errorf("monitor leaks: %d", opt.MonitorLeaks)
	}
}

func TestJITAgreesOnLockElision(t *testing.T) {
	_, ctxs := assertAgree(t, hotProgram(`
    T tmp = new T();
    int r = 0;
    synchronized (tmp) {
      tmp.f = i;
      r = tmp.f + 1;
    }
  `))
	if totalCount(ctxs, profile.BEscapeNone) == 0 {
		t.Error("expected NoEscape classification")
	}
	if totalCount(ctxs, profile.BLockElim) == 0 {
		t.Error("expected lock elimination events")
	}
	if totalCount(ctxs, profile.BScalarReplace) == 0 {
		t.Error("expected scalar replacement events")
	}
}

func TestJITAgreesOnUnrolledSyncCoarsening(t *testing.T) {
	// The headline interaction: a synchronized region inside a small
	// constant loop fully unrolls into adjacent regions, which lock
	// coarsening then merges. Output must still agree.
	_, ctxs := assertAgree(t, hotProgram(`
    int r = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) {
        r = r + k + i;
      }
    }
  `))
	if totalCount(ctxs, profile.BUnroll) == 0 {
		t.Fatal("expected unroll")
	}
	if totalCount(ctxs, profile.BLockCoarsen) == 0 {
		t.Fatal("expected coarsening of the unrolled regions")
	}
	// The coarsen event must carry unroll provenance — the interaction.
	seen := false
	for _, c := range ctxs {
		for _, ev := range c.Events {
			if ev.Behavior == profile.BLockCoarsen && ev.Prov.Has(FromUnroll) {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("coarsen event does not carry unroll provenance")
	}
}

func TestJITAgreesOnInlining(t *testing.T) {
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    t.f = 5;
    long acc = 0;
    for (int i = 0; i < 3000; i += 1) {
      acc = acc + t.caller(i);
    }
    print(acc);
  }
  int caller(int i) {
    int a = T.add(i, this.f);
    int b = T.add(a, 1);
    return a + b;
  }
  static int add(int x, int y) { return x + y; }
}
`
	_, ctxs := assertAgree(t, src)
	if totalCount(ctxs, profile.BInline) == 0 {
		t.Error("expected inline events")
	}
}

func TestJITAgreesOnSynchronizedCalleeInline(t *testing.T) {
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    t.f = 2;
    long acc = 0;
    for (int i = 0; i < 3000; i += 1) {
      acc = acc + t.caller(i);
    }
    print(acc);
  }
  int caller(int i) {
    int v = this.locked(i);
    return v + 1;
  }
  synchronized int locked(int x) { return x + this.f; }
}
`
	opt, ctxs := assertAgree(t, src)
	if totalCount(ctxs, profile.BInlineSync) == 0 {
		t.Error("expected synchronized-inline events (monitors rewired)")
	}
	if opt.MonitorLeaks != 0 {
		t.Errorf("monitor leaks after sync inline: %d", opt.MonitorLeaks)
	}
}

func TestJITAgreesOnReflectionDereflect(t *testing.T) {
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    t.f = 4;
    long acc = 0;
    for (int i = 0; i < 2000; i += 1) {
      acc = acc + t.viaReflect(i);
    }
    print(acc);
  }
  int viaReflect(int i) {
    int a = reflect_invoke("T", "mul", this, i);
    int b = reflect_get("T", "f", this);
    return a + b;
  }
  int mul(int x) { return x * 3; }
}
`
	_, ctxs := assertAgree(t, src)
	found := false
	for _, c := range ctxs {
		for _, ev := range c.Events {
			if ev.Pass == "dereflect" {
				found = true
			}
		}
	}
	if !found {
		t.Error("expected dereflect events")
	}
}

func TestJITAgreesOnAutobox(t *testing.T) {
	_, ctxs := assertAgree(t, hotProgram(`
    Integer bx = Integer.valueOf(i + 1);
    int r = bx.intValue() + Integer.valueOf(i).intValue();
  `))
	if totalCount(ctxs, profile.BAutoboxElim) == 0 {
		t.Error("expected autobox elimination events")
	}
}

func TestJITAgreesOnGVNAndAlgebra(t *testing.T) {
	_, ctxs := assertAgree(t, hotProgram(`
    int a = i * 31 + 7;
    int b = i * 31 + 7;
    int c = a + 0;
    int d = b * 1;
    int r = a + b + c + d + (i - i) + (3 + 4);
  `))
	if totalCount(ctxs, profile.BGVN) == 0 {
		t.Error("expected GVN events")
	}
	if totalCount(ctxs, profile.BAlgebraic) == 0 {
		t.Error("expected algebraic simplification events")
	}
}

func TestJITAgreesOnRSEAndDCE(t *testing.T) {
	_, ctxs := assertAgree(t, hotProgram(`
    int r = 1;
    r = 2;
    r = i;
    int dead = i * 999;
    this.f = 1;
    this.f = i;
  `))
	if totalCount(ctxs, profile.BRedundantStore) == 0 {
		t.Error("expected redundant store elimination")
	}
	if totalCount(ctxs, profile.BDCE) == 0 {
		t.Error("expected DCE events")
	}
}

func TestJITAgreesOnExceptions(t *testing.T) {
	assertAgree(t, hotProgram(`
    int r = 0;
    try {
      if (i % 10 == 3) {
        throw i;
      }
      r = i * 2;
    } catch (e) {
      r = e + 1;
    }
    try {
      r = r + 100 / (i % 5);
    } catch (e2) {
      r = r - 1;
    }
  `))
}

func TestJITAgreesOnSyncThrow(t *testing.T) {
	opt, _ := assertAgree(t, hotProgram(`
    int r = 0;
    try {
      synchronized (this) {
        if (i % 7 == 1) {
          throw 5;
        }
        r = i;
      }
    } catch (e) {
      r = e;
    }
  `))
	if opt.MonitorLeaks != 0 {
		t.Errorf("monitor leaks: %d", opt.MonitorLeaks)
	}
}

func TestUncommonTrapDeopt(t *testing.T) {
	// The guard is false through warm-up and fires late: compiled code
	// traps, logs the deopt, invalidates, and the method recompiles
	// without speculation. Output must agree throughout.
	src := `
class T {
  static void main() {
    long acc = 0;
    for (int i = 0; i < 9000; i += 1) {
      acc = acc + T.guarded(i);
    }
    print(acc);
  }
  static int guarded(int i) {
    int r = i;
    if (i > 8000) {
      r = r * 2;
    }
    return r;
  }
}
`
	ref, opt, _ := runBoth(t, src)
	if ref.OutputString() != opt.OutputString() {
		t.Fatalf("deopt divergence:\n%s\nvs\n%s", ref.OutputString(), opt.OutputString())
	}
	if opt.Deopts == 0 {
		t.Error("expected at least one deoptimization")
	}
}

func TestTrapLogAndRecompileEvents(t *testing.T) {
	src := `
class T {
  static void main() {
    long acc = 0;
    for (int i = 0; i < 9000; i += 1) {
      acc = acc + T.guarded(i);
    }
    print(acc);
  }
  static int guarded(int i) {
    int r = i;
    if (i > 6000) {
      r = r * 2;
    }
    return r;
  }
}
`
	img := compileImg(t, src)
	rec := profile.NewRecorder(profile.DefaultFlags())
	cov := coverage.NewTracker()
	comp := New(rec, cov, nil)
	res := vm.NewMachine(img, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp}).Run()
	if res.Crashed() {
		t.Fatalf("crash: %v", res.Crash)
	}
	text := rec.Text()
	if !strings.Contains(text, "Uncommon trap occurred") {
		t.Error("log missing uncommon trap line")
	}
	if !strings.Contains(text, "Deoptimization: recompile") {
		t.Error("log missing recompile line")
	}
	obv := profile.ExtractOBV(text)
	if obv[profile.BUncommonTrap] == 0 || obv[profile.BDeoptRecompile] == 0 {
		t.Errorf("OBV missing deopt behaviors: %v", obv)
	}
}

// crashHook crashes compilation when lock coarsening merges regions
// with unroll provenance — a JDK-8312744-shaped trigger.
type crashHook struct{}

func (crashHook) Observe(ctx *Context, ev Event) error {
	if ev.Behavior == profile.BLockCoarsen && ev.Prov.Has(FromUnroll) {
		return &vm.Crash{BugID: "TEST-1", Component: "Macro Expansion, C2", Message: "null pointer in coarsening retry", FnKey: ctx.Fn.Key()}
	}
	return nil
}

func TestHookCrashPropagates(t *testing.T) {
	src := hotProgram(`
    int r = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) {
        r = r + k;
      }
    }
  `)
	img := compileImg(t, src)
	rec := profile.NewRecorder(profile.DefaultFlags())
	comp := New(rec, coverage.NewTracker(), crashHook{})
	res := vm.NewMachine(img, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp}).Run()
	if !res.Crashed() {
		t.Fatal("expected a JVM crash")
	}
	if res.Crash.BugID != "TEST-1" {
		t.Errorf("crash bug = %q", res.Crash.BugID)
	}
	if !strings.Contains(res.Crash.HsErrReport("test-vm"), "Macro Expansion") {
		t.Error("hs_err report missing component")
	}
}

// leakHook makes the next inlined synchronized region lose its
// exception cleanup (a miscompilation).
type leakHook struct{}

func (leakHook) Observe(ctx *Context, ev Event) error {
	if ev.Behavior == profile.BInlineSync {
		ctx.DropSyncCleanup = true
	}
	return nil
}

func TestHookMiscompileMonitorLeak(t *testing.T) {
	// locked() throws on rare inputs; with the defect, the rewired
	// monitor is not released on that path.
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    long acc = 0;
    for (int i = 0; i < 6000; i += 1) {
      try {
        int v = t.caller(i);
        acc = acc + v % 1000;
      } catch (e) {
        acc = acc + e;
      }
    }
    print(acc);
  }
  int caller(int i) {
    int v = this.locked(i);
    return v + 1;
  }
  synchronized int locked(int x) { return this.f + 100 / (x - 5900); }
}
`
	img := compileImg(t, src)
	rec := profile.NewRecorder(profile.DefaultFlags())
	comp := New(rec, coverage.NewTracker(), leakHook{})
	res := vm.NewMachine(img, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp}).Run()
	// The defect must be observable: either a leak or a monitor-state
	// crash, either of which differential testing flags.
	if res.MonitorLeaks == 0 && !res.Crashed() {
		t.Errorf("defect not observable: %+v", res)
	}
}

func TestCoverageAccumulates(t *testing.T) {
	src := hotProgram(`
    int r = 0;
    synchronized (this) { r = i; }
  `)
	img := compileImg(t, src)
	cov := coverage.NewTracker()
	comp := New(profile.NewRecorder(profile.NoFlags()), cov, nil)
	res := vm.NewMachine(img, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp,
		Trace: cov.Hit}).Run()
	if res.Crashed() {
		t.Fatalf("crash: %v", res.Crash)
	}
	if cov.Percent(coverage.C2) <= 0 {
		t.Error("no C2 coverage recorded")
	}
	if cov.Percent(coverage.Runtime) <= 0 {
		t.Error("no Runtime coverage recorded")
	}
	if !cov.Covered("c2.locks.coarsen") && !cov.Covered("c2.locks.eliminate") {
		t.Log("note: no lock-pass coverage; acceptable but unexpected")
	}
}

func TestProfileLogMatchesRules(t *testing.T) {
	src := hotProgram(`
    int r = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) {
        r = r + k;
      }
    }
    Integer bx = Integer.valueOf(r);
    r = bx.intValue();
  `)
	img := compileImg(t, src)
	rec := profile.NewRecorder(profile.DefaultFlags())
	comp := New(rec, coverage.NewTracker(), nil)
	res := vm.NewMachine(img, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp}).Run()
	if res.Crashed() {
		t.Fatalf("crash: %v", res.Crash)
	}
	obv := profile.ExtractOBV(rec.Text())
	if obv[profile.BUnroll] == 0 {
		t.Errorf("OBV missing Unroll; log:\n%s", rec.Text())
	}
	if obv[profile.BLockCoarsen] == 0 {
		t.Errorf("OBV missing LockCoarsen; log:\n%s", rec.Text())
	}
	if obv[profile.BAutoboxElim] == 0 {
		t.Errorf("OBV missing AutoboxElim; log:\n%s", rec.Text())
	}
	if obv.DistinctTypes() < 3 {
		t.Errorf("OBV too sparse: %v", obv)
	}
}

func TestFlagGatingSilencesLog(t *testing.T) {
	src := hotProgram(`
    int r = 0;
    for (int k = 0; k < 4; k += 1) {
      r = r + k;
    }
  `)
	img := compileImg(t, src)
	rec := profile.NewRecorder(profile.NoFlags())
	comp := New(rec, coverage.NewTracker(), nil)
	res := vm.NewMachine(img, vm.Config{C1Threshold: 4, C2Threshold: 8, JIT: comp}).Run()
	if res.Crashed() {
		t.Fatalf("crash: %v", res.Crash)
	}
	if rec.Len() != 0 {
		t.Errorf("flags off but %d log lines recorded", rec.Len())
	}
}

func TestIRCloneIndependence(t *testing.T) {
	n := Seq(&Node{Kind: NDecl, Name: "x", Kids: []*Node{ConstInt(1)}})
	c := n.Clone()
	c.Kids[0].Name = "y"
	if n.Kids[0].Name != "x" {
		t.Error("Clone is shallow")
	}
}

func TestProvenanceHelpers(t *testing.T) {
	p := FromUnroll | FromCoarsen
	if !p.Has(FromUnroll) || p.Has(FromPeel) {
		t.Error("Prov.Has broken")
	}
	if p.Count() != 2 {
		t.Errorf("Prov.Count = %d", p.Count())
	}
}

func TestIsPure(t *testing.T) {
	pure, err := lowerExprFromSrc(t, "(a + (b * 3))")
	if err != nil || !IsPure(pure) {
		t.Errorf("pure expr misclassified: %v", err)
	}
	impure, err := lowerExprFromSrc(t, "(a / b)")
	if err != nil || IsPure(impure) {
		t.Error("division by variable should be impure")
	}
	divc, err := lowerExprFromSrc(t, "(a / 2)")
	if err != nil || !IsPure(divc) {
		t.Error("division by nonzero constant is pure")
	}
}

func lowerExprFromSrc(t *testing.T, src string) (*Node, error) {
	t.Helper()
	e, err := lang.ParseExprString(src, nil)
	if err != nil {
		return nil, err
	}
	return lowerExpr(e)
}
