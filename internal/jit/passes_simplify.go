package jit

import (
	"fmt"
	"strings"

	"repro/internal/lang"
	"repro/internal/profile"
)

// passAutobox eliminates boxing round-trips:
//
//  1. Integer.valueOf(e).intValue()  =>  e
//  2. Integer v = Integer.valueOf(e) where every use of v is
//     v.intValue() and v is never reassigned, locked, compared, or
//     passed on  =>  int v = e, with uses rewritten to plain reads.
func passAutobox(ctx *Context) error {
	var failed error
	// Pattern 1: unbox-of-box anywhere in an expression.
	ctx.Fn.Body = rewriteExprs(ctx.Fn.Body, func(n *Node) *Node {
		if failed != nil {
			return n
		}
		if n.Kind == NUnbox && n.Kids[0].Kind == NBox {
			inner := n.Kids[0].Kids[0]
			inner.Prov |= n.Prov | n.Kids[0].Prov | FromAutoboxElim
			ctx.Cover("c2.autobox.eliminate")
			ctx.EmitBehaviorf(profile.FlagTraceAutoBoxElimination, profile.LineAutoboxElim, "Eliminated autobox Integer.valueOf in %s", ctx.Fn.Key())
			failed = ctx.Record(Event{Pass: "autobox", Behavior: profile.BAutoboxElim,
				Detail: ctx.Fn.Key(), Prov: inner.Prov})
			return inner
		}
		return n
	})
	if failed != nil {
		return failed
	}

	// Pattern 2: single-assignment box-typed locals used only via unbox.
	body := ctx.Fn.Body
	writes := map[string]int{}
	body.Walk(func(n *Node) bool {
		if n.Kind == NDecl || n.Kind == NAssignVar {
			writes[n.Name]++
		}
		return true
	})
	var decls []*Node
	body.Walk(func(n *Node) bool {
		if n.Kind == NDecl && n.Kids[0].Kind == NBox && writes[n.Name] == 1 {
			decls = append(decls, n)
		}
		return true
	})
	for _, decl := range decls {
		name := decl.Name
		ok := true
		reads := 0
		// Every read of name must appear as NUnbox(NVar name).
		var check func(n *Node, parentUnbox bool)
		check = func(n *Node, parentUnbox bool) {
			if n == nil || !ok {
				return
			}
			if n.Kind == NVar && n.Name == name {
				reads++
				if !parentUnbox {
					ok = false
				}
				return
			}
			for _, k := range n.Kids {
				check(k, n.Kind == NUnbox)
			}
		}
		check(body, false)
		if !ok || reads == 0 {
			continue
		}
		// Rewrite: decl becomes int v = e; every Unbox(Var v) -> Var v.
		inner := decl.Kids[0].Kids[0]
		decl.Kids[0] = inner
		decl.Ty = lang.Int
		decl.Prov |= FromAutoboxElim
		ctx.Fn.Body = rewriteExprs(ctx.Fn.Body, func(n *Node) *Node {
			if n.Kind == NUnbox && n.Kids[0].Kind == NVar && n.Kids[0].Name == name {
				v := n.Kids[0]
				v.Ty = lang.Int
				v.Prov |= FromAutoboxElim
				return v
			}
			return n
		})
		ctx.Cover("c2.autobox.eliminate")
		ctx.EmitBehaviorf(profile.FlagTraceAutoBoxElimination, profile.LineAutoboxElim, "Eliminated autobox local %s in %s", name, ctx.Fn.Key())
		if err := ctx.Record(Event{Pass: "autobox", Behavior: profile.BAutoboxElim,
			Detail: name, Prov: decl.Prov}); err != nil {
			return err
		}
	}
	return nil
}

// passAlgebra performs constant folding (with Java int-wrap semantics)
// and algebraic identity rewrites. A seeded defect (ctx.CorruptFold)
// makes one fold produce an off-by-one constant.
func passAlgebra(ctx *Context, prefix string) error {
	var failed error
	ctx.Fn.Body = rewriteExprs(ctx.Fn.Body, func(n *Node) *Node {
		if failed != nil {
			return n
		}
		out, desc := simplifyNode(n)
		if out == n || desc == "" {
			return out
		}
		out.Prov |= n.Prov | FromAlgebraic
		ctx.Cover(prefix + ".algebra.apply")
		if out.Kind == NConstInt || out.Kind == NConstBool {
			ctx.Cover(prefix + ".algebra.fold")
		}
		ctx.EmitBehaviorf(profile.FlagTraceAlgebraicOpts, profile.LineAlgebraic, "AlgebraicSimplify: %s in %s", desc, ctx.Fn.Key())
		failed = ctx.Record(Event{Pass: "algebra", Behavior: profile.BAlgebraic,
			Detail: desc, Prov: out.Prov})
		if ctx.CorruptFold && out.Kind == NConstInt {
			out.IVal++ // miscompilation (hook-requested): off-by-one fold
			ctx.CorruptFold = false
		}
		return out
	})
	return failed
}

// simplifyNode returns the simplified replacement and a description, or
// (n, "") when no rewrite applies.
func simplifyNode(n *Node) (*Node, string) {
	switch n.Kind {
	case NWiden:
		if k := n.Kids[0]; k.Kind == NConstInt && !k.IsLong {
			return &Node{Kind: NConstInt, IVal: int64(int32(k.IVal)), IsLong: true, Ty: lang.Long}, "i2l(const)"
		}
	case NUnary:
		if k := n.Kids[0]; k.Kind == NConstInt {
			v := k.IVal
			switch n.UnOp {
			case lang.OpNeg:
				v = -v
			case lang.OpBitNot:
				v = ^v
			default:
				return n, ""
			}
			if !k.IsLong {
				v = int64(int32(v))
			}
			return &Node{Kind: NConstInt, IVal: v, IsLong: k.IsLong, Ty: k.Ty}, "fold unary"
		}
		if n.UnOp == lang.OpNot && n.Kids[0].Kind == NConstBool {
			return &Node{Kind: NConstBool, IVal: 1 - n.Kids[0].IVal, Ty: lang.Bool}, "fold !const"
		}
	case NBinary:
		l, r := n.Kids[0], n.Kids[1]
		if l.Kind == NConstInt && r.Kind == NConstInt {
			return foldConstBinary(n, l, r)
		}
		// Identities. Rewrites that return an operand must preserve the
		// result's numeric kind (int vs long), or downstream wrap
		// semantics would change.
		lKeeps := l.Ty.Kind == n.Ty.Kind
		rKeeps := r.Ty.Kind == n.Ty.Kind
		switch n.BinOp {
		case lang.OpAdd:
			if isZero(r) && lKeeps {
				return l, "x+0"
			}
			if isZero(l) && rKeeps {
				return r, "0+x"
			}
		case lang.OpSub:
			if isZero(r) && lKeeps {
				return l, "x-0"
			}
			if sameVar(l, r) {
				return zeroLike(n), "x-x"
			}
		case lang.OpMul:
			if isOne(r) && lKeeps {
				return l, "x*1"
			}
			if isOne(l) && rKeeps {
				return r, "1*x"
			}
			if isZero(r) && strongPure(l) {
				return zeroLike(n), "x*0"
			}
			if isZero(l) && strongPure(r) {
				return zeroLike(n), "0*x"
			}
			if isConst(r, 2) && n.Ty.Kind == lang.KindInt {
				return &Node{Kind: NBinary, BinOp: lang.OpShl, Ty: n.Ty,
					Kids: []*Node{l, ConstInt(1)}}, "x*2=>x<<1"
			}
		case lang.OpDiv:
			if isOne(r) && lKeeps {
				return l, "x/1"
			}
		case lang.OpXor:
			if sameVar(l, r) && l.Ty.Kind != lang.KindBool {
				return zeroLike(n), "x^x"
			}
			if isZero(r) && l.Ty.IsNumeric() && lKeeps {
				return l, "x^0"
			}
		case lang.OpOr:
			if isZero(r) && l.Ty.IsNumeric() && lKeeps {
				return l, "x|0"
			}
		case lang.OpShl, lang.OpShr:
			if isZero(r) && lKeeps {
				return l, "x<<0"
			}
		}
	}
	return n, ""
}

func foldConstBinary(n, l, r *Node) (*Node, string) {
	isLong := l.IsLong || r.IsLong
	a, b := l.IVal, r.IVal
	var v int64
	switch n.BinOp {
	case lang.OpAdd:
		v = a + b
	case lang.OpSub:
		v = a - b
	case lang.OpMul:
		v = a * b
	case lang.OpDiv, lang.OpRem:
		if b == 0 {
			return n, "" // folding would erase the ArithmeticException
		}
		if n.BinOp == lang.OpDiv {
			v = a / b
		} else {
			v = a % b
		}
	case lang.OpAnd:
		v = a & b
	case lang.OpOr:
		v = a | b
	case lang.OpXor:
		v = a ^ b
	case lang.OpShl:
		if isLong {
			v = a << uint(b&63)
		} else {
			v = int64(int32(a) << uint(b&31))
		}
	case lang.OpShr:
		if isLong {
			v = a >> uint(b&63)
		} else {
			v = int64(int32(a) >> uint(b&31))
		}
	default:
		// Comparisons fold to booleans.
		var res bool
		switch n.BinOp {
		case lang.OpEq:
			res = a == b
		case lang.OpNe:
			res = a != b
		case lang.OpLt:
			res = a < b
		case lang.OpLe:
			res = a <= b
		case lang.OpGt:
			res = a > b
		case lang.OpGe:
			res = a >= b
		default:
			return n, ""
		}
		iv := int64(0)
		if res {
			iv = 1
		}
		return &Node{Kind: NConstBool, IVal: iv, Ty: lang.Bool}, "fold cmp"
	}
	if !isLong {
		v = int64(int32(v))
	}
	ty := lang.Int
	if isLong {
		ty = lang.Long
	}
	return &Node{Kind: NConstInt, IVal: v, IsLong: isLong, Ty: ty},
		fmt.Sprintf("fold %s", n.BinOp)
}

func isZero(n *Node) bool { return n.Kind == NConstInt && n.IVal == 0 }
func isOne(n *Node) bool  { return n.Kind == NConstInt && n.IVal == 1 }
func isConst(n *Node, v int64) bool {
	return n.Kind == NConstInt && n.IVal == v
}

func sameVar(a, b *Node) bool {
	return a.Kind == NVar && b.Kind == NVar && a.Name == b.Name
}

func zeroLike(n *Node) *Node {
	return &Node{Kind: NConstInt, IVal: 0, IsLong: n.Ty.Kind == lang.KindLong, Ty: n.Ty}
}

// passGVN performs block-local value numbering over declaration
// initializers and assignments: a pure expression already computed into
// a live variable subsumes later recomputations.
func passGVN(ctx *Context) error {
	var failed error
	ctx.Cover("c2.gvn.apply")
	forEachSeq(ctx.Fn.Body, func(seq *Node) {
		if failed != nil {
			return
		}
		avail := map[string]string{} // exprKey -> variable holding it
		invalidate := func(name string) {
			for k, v := range avail {
				if v == name {
					delete(avail, k)
				}
			}
			// Drop expressions that read the reassigned variable.
			probe := "v(" + name + ")"
			for k := range avail {
				if strings.Contains(k, probe) {
					delete(avail, k)
				}
			}
		}
		for _, k := range seq.Kids {
			switch k.Kind {
			case NDecl, NAssignVar:
				init := k.Kids[0]
				if !IsPure(init) {
					// Impure RHS may write anything: flush.
					avail = map[string]string{}
					invalidate(k.Name)
					continue
				}
				key := exprKey(init)
				if prior, ok := avail[key]; ok && prior != k.Name && init.Kind != NVar && init.Kind != NConstInt && init.Kind != NConstBool {
					k.Kids[0] = &Node{Kind: NVar, Name: prior, Ty: init.Ty, Prov: init.Prov | FromGVN}
					ctx.Cover("c2.gvn.subsume")
					ctx.EmitBehaviorf(profile.FlagPrintGVN, profile.LineGVN, "GVN hit: %s subsumed by %s in %s", key, prior, ctx.Fn.Key())
					failed = ctx.Record(Event{Pass: "gvn", Behavior: profile.BGVN,
						Detail: prior, Prov: k.Kids[0].Prov | provOf(k)})
					if failed != nil {
						return
					}
					invalidate(k.Name)
					avail[key] = prior
					continue
				}
				invalidate(k.Name)
				// Do not record expressions that read the variable just
				// written: their value changes with it.
				if !strings.Contains(key, "v("+k.Name+")") {
					avail[key] = k.Name
				}
			case NPrint:
				if !IsPure(k.Kids[0]) {
					avail = map[string]string{}
				}
			case NNop:
			default:
				// Any other statement may write state: flush.
				avail = map[string]string{}
			}
		}
	})
	return failed
}
