// Package jit implements the simulated JVM's JIT compiler: a tree IR
// (in the style of OpenJ9's Testarossa), a lowering step from the
// method's source tree, two optimization pipelines (C1 and C2) built
// from sixteen genuine transformation passes, and an executor that runs
// the optimized IR as "compiled code".
//
// Passes log flag-gated profile lines (package profile) and append
// interaction events to the compilation Context; seeded defects (package
// buginject) observe those events and either crash the compiler or
// corrupt the IR — reproducing the optimization-interaction failure mode
// the paper targets.
package jit

import (
	"repro/internal/lang"
)

// Prov is a provenance bitmask recording which optimizations produced or
// reshaped a node. Interactions show up as nodes whose provenance mixes
// several passes — exactly the state the bug predicates inspect.
type Prov uint16

// Provenance bits.
const (
	FromUnroll Prov = 1 << iota
	FromPeel
	FromUnswitch
	FromPreMainPost
	FromInline
	FromInlineSync
	FromCoarsen
	FromScalarReplace
	FromDereflect
	FromAutoboxElim
	FromGVN
	FromAlgebraic
)

func (p Prov) Has(bit Prov) bool { return p&bit != 0 }

// Count returns how many provenance bits are set (a cheap measure of how
// many optimizations touched the node).
func (p Prov) Count() int {
	n := 0
	for b := Prov(1); b != 0; b <<= 1 {
		if p&b != 0 {
			n++
		}
	}
	return n
}

// Kind enumerates IR node kinds. The IR deliberately stays a structured
// tree: loop and lock optimizations are tree reshapes, which is what
// makes their interactions explicit.
type Kind int

// Node kinds. Statement kinds first, then expressions.
const (
	NSeq Kind = iota
	NDecl
	NAssignVar
	NAssignField
	NAssignIndex
	NIf
	NFor
	NWhile
	NSync
	NReturn
	NThrow
	NTry
	NPrint
	NExprStmt
	NNop
	NUncommonTrap // compiled speculation: executing it deoptimizes

	NConstInt
	NConstBool
	NConstStr
	NVar
	NFieldGet
	NBinary
	NUnary
	NCall
	NReflectCall
	NReflectGet
	NNew
	NNewArray
	NIndex
	NBox
	NUnbox
	NWiden     // int -> long conversion
	NNullCheck // throws NPE when the kid is null, else passes it through
	NCond
)

var kindNames = map[Kind]string{
	NSeq: "seq", NDecl: "decl", NAssignVar: "assign", NAssignField: "putfield",
	NAssignIndex: "astore", NIf: "if", NFor: "for", NWhile: "while", NSync: "sync",
	NReturn: "return", NThrow: "throw", NTry: "try", NPrint: "print",
	NExprStmt: "exprstmt", NNop: "nop", NUncommonTrap: "uncommon_trap",
	NConstInt: "const", NConstBool: "constbool", NConstStr: "conststr",
	NVar: "var", NFieldGet: "getfield", NBinary: "binary", NUnary: "unary",
	NCall: "call", NReflectCall: "reflect_call", NReflectGet: "reflect_get",
	NNew: "new", NNewArray: "newarray", NIndex: "aload", NBox: "box",
	NUnbox: "unbox", NWiden: "i2l", NNullCheck: "nullcheck", NCond: "cond",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind?"
}

// IsStmt reports whether the kind is a statement node.
func (k Kind) IsStmt() bool { return k <= NUncommonTrap }

// Node is one IR tree node. Field use by kind:
//
//	NSeq:         Kids = statements
//	NDecl:        Name = variable, Kids[0] = init, Ty = declared type
//	NAssignVar:   Name = variable, Kids[0] = value
//	NAssignField: Class/Name = field, Static; Kids = [recv?, value]
//	NAssignIndex: Kids = [arr, idx, value]
//	NIf:          Kids = [cond, then, else?]  (then/else are NSeq)
//	NFor:         Name = loop var, Step; Kids = [from, to, body]
//	NWhile:       Kids = [cond, body]
//	NSync:        Kids = [monitor, body]; NoExcCleanup is a defect flag
//	NReturn:      Kids = [value?] (may be empty)
//	NThrow:       Kids = [value]
//	NTry:         Name = catch var; Kids = [body, catch]
//	NPrint:       Kids = [value]
//	NExprStmt:    Kids = [expr]
//	NUncommonTrap: Kids = [original statement]; Name = trap reason
//	NConstInt:    IVal, IsLong
//	NConstBool:   IVal (0/1)
//	NConstStr:    SVal
//	NVar:         Name; Ty
//	NFieldGet:    Class/Name, Static; Kids = [recv?]
//	NBinary:      BinOp; Kids = [l, r]; Ty
//	NUnary:       UnOp; Kids = [x]; Ty
//	NCall:        Class/Name = target, Static; Kids = [recv?, args...]
//	NReflectCall: like NCall but through reflection
//	NReflectGet:  Class/Name = field, Static; Kids = [recv?]
//	NNew:         Class
//	NNewArray:    Kids = [len]
//	NIndex:       Kids = [arr, idx]
//	NBox/NUnbox:  Kids = [x]
//	NCond:        Kids = [c, t, f]; Ty
type Node struct {
	Kind Kind
	Kids []*Node

	Name   string
	Class  string
	BinOp  lang.BinOp
	UnOp   lang.UnOp
	IVal   int64
	SVal   string
	IsLong bool
	Static bool
	Step   int64
	Ty     lang.Type

	Prov Prov

	// NoExcCleanup marks an NSync whose exception path omits the
	// monitor release — a seeded-miscompilation effect reproducing the
	// Listing 1 hazard. Correct compilation never sets it.
	NoExcCleanup bool
}

// Seq builds a sequence node.
func Seq(kids ...*Node) *Node { return &Node{Kind: NSeq, Kids: kids} }

// ConstInt builds an int constant node.
func ConstInt(v int64) *Node { return &Node{Kind: NConstInt, IVal: v, Ty: lang.Int} }

// Var builds a variable reference node.
func Var(name string, ty lang.Type) *Node { return &Node{Kind: NVar, Name: name, Ty: ty} }

// Clone deep-copies a subtree, preserving provenance and flags.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Kids = make([]*Node, len(n.Kids))
	for i, k := range n.Kids {
		c.Kids[i] = k.Clone()
	}
	return &c
}

// Walk visits n and all descendants pre-order. Returning false from fn
// skips the node's children.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, k := range n.Kids {
		k.Walk(fn)
	}
}

// CountNodes returns the subtree size (nil-safe).
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	c := 0
	n.Walk(func(*Node) bool { c++; return true })
	return c
}

// AddProv sets a provenance bit on the whole subtree.
func (n *Node) AddProv(p Prov) {
	n.Walk(func(m *Node) bool { m.Prov |= p; return true })
}

// Func is a compiled method's IR.
type Func struct {
	Class        string
	Name         string
	Params       []lang.Param
	HasReceiver  bool
	Ret          lang.Type
	Synchronized bool
	Body         *Node // NSeq
}

// Key returns "Class.Name".
func (f *Func) Key() string { return f.Class + "." + f.Name }

// IsPure reports whether evaluating the expression subtree has no side
// effects and no failure modes other than reading state: constants,
// variable reads, field reads with pure receivers, and operators over
// pure operands. Calls, allocations, array accesses (bounds), division
// (zero) and reflection are impure.
func IsPure(n *Node) bool {
	if n == nil {
		return true
	}
	switch n.Kind {
	case NConstInt, NConstBool, NConstStr, NVar:
		return true
	case NFieldGet:
		return len(n.Kids) == 0 || (n.Kids[0] != nil && n.Kids[0].Kind == NVar)
	case NBinary:
		if n.BinOp == lang.OpDiv || n.BinOp == lang.OpRem {
			// Division can throw unless the divisor is a nonzero constant.
			r := n.Kids[1]
			if r.Kind != NConstInt || r.IVal == 0 {
				return false
			}
		}
		return IsPure(n.Kids[0]) && IsPure(n.Kids[1])
	case NUnary:
		return IsPure(n.Kids[0])
	case NCond:
		return IsPure(n.Kids[0]) && IsPure(n.Kids[1]) && IsPure(n.Kids[2])
	case NWiden:
		return IsPure(n.Kids[0])
	case NBox, NUnbox:
		// Box allocates; unbox can NPE. Treat unbox-of-box as impure too
		// (the autobox pass handles that shape explicitly).
		return false
	}
	return false
}

// strongPure reports whether the expression reads no mutable state at
// all: constants, local variable reads, and operators over them. Unlike
// IsPure it excludes field reads, which could observe writes made by a
// reordered impure sibling.
func strongPure(n *Node) bool {
	if n == nil {
		return true
	}
	switch n.Kind {
	case NConstInt, NConstBool, NConstStr, NVar:
		return true
	case NBinary:
		if n.BinOp == lang.OpDiv || n.BinOp == lang.OpRem {
			r := n.Kids[1]
			if r.Kind != NConstInt || r.IVal == 0 {
				return false
			}
		}
		return strongPure(n.Kids[0]) && strongPure(n.Kids[1])
	case NUnary, NWiden:
		return strongPure(n.Kids[0])
	case NCond:
		return strongPure(n.Kids[0]) && strongPure(n.Kids[1]) && strongPure(n.Kids[2])
	}
	return false
}

// ReadsVar reports whether the subtree reads the named variable.
func ReadsVar(n *Node, name string) bool {
	found := false
	n.Walk(func(m *Node) bool {
		if m.Kind == NVar && m.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// AssignsVar reports whether the subtree contains an assignment or
// declaration of the named variable (including loop variables).
func AssignsVar(n *Node, name string) bool {
	found := false
	n.Walk(func(m *Node) bool {
		switch m.Kind {
		case NAssignVar, NDecl:
			if m.Name == name {
				found = true
			}
		case NFor:
			if m.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// SameSimpleExpr reports whether two expression subtrees are
// syntactically identical simple values (constants, variable reads, or
// static field reads) — the equality the lock passes use to prove two
// monitors are the same object.
func SameSimpleExpr(a, b *Node) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case NVar:
		return a.Name == b.Name
	case NConstStr:
		return a.SVal == b.SVal
	case NFieldGet:
		if a.Class != b.Class || a.Name != b.Name || a.Static != b.Static {
			return false
		}
		if a.Static {
			return true
		}
		return SameSimpleExpr(a.Kids[0], b.Kids[0])
	}
	return false
}
