package jit

import (
	"repro/internal/lang"
	"repro/internal/profile"
)

// trapCutoff is the constant magnitude above which a comparison against
// a loop-carried value is speculated never-taken (the profile of such
// guards in warm-up loops is overwhelmingly one-sided).
const trapCutoff = 300

// passTraps compiles rarely-taken branches as uncommon traps: the branch
// body is replaced by a trap node that, if ever executed, logs the
// deoptimization and invalidates the compiled code. On a recompilation
// (DeoptCount > 0) the pass emits the recompile event and performs no
// speculation, matching the trap-then-recompile lifecycle.
func passTraps(ctx *Context) error {
	key := ctx.Fn.Key()
	if ctx.Env.DeoptCount(key) > 0 {
		ctx.Cover("c2.osr")
		ctx.Cover("c1.deopt_support")
		ctx.EmitBehaviorf(profile.FlagTraceDeoptimization, profile.LineDeoptRecompile, "Deoptimization: recompile %s (count %d)", key, ctx.Env.DeoptCount(key))
		return ctx.Record(Event{Pass: "traps", Behavior: profile.BDeoptRecompile, Detail: key})
	}
	var failed error
	var walk func(n *Node, sc stmtCtx)
	walk = func(n *Node, sc stmtCtx) {
		if failed != nil || n == nil || !n.Kind.IsStmt() {
			return
		}
		switch n.Kind {
		case NSeq:
			for _, k := range n.Kids {
				walk(k, sc)
			}
		case NIf:
			if len(n.Kids) == 2 && speculateNeverTaken(n.Kids[0]) && n.Kids[1].Kind == NSeq {
				trap := &Node{Kind: NUncommonTrap, Name: "unstable_if",
					Prov: n.Prov, Kids: []*Node{n.Kids[1]}}
				n.Kids[1] = Seq(trap)
				ctx.Cover("c2.traps.insert")
				failed = ctx.Record(Event{Pass: "traps", Behavior: BehaviorNone,
					Detail: "speculate unstable_if", Prov: n.Prov,
					SyncDepth: sc.SyncDepth, LoopDepth: sc.LoopDepth})
				if failed != nil {
					return
				}
				return // do not speculate inside the trapped region
			}
			walk(n.Kids[1], sc)
			if len(n.Kids) > 2 {
				walk(n.Kids[2], sc)
			}
		case NFor:
			inner := sc
			inner.LoopDepth++
			walk(n.Kids[2], inner)
		case NWhile:
			inner := sc
			inner.LoopDepth++
			walk(n.Kids[1], inner)
		case NSync:
			inner := sc
			inner.SyncDepth++
			walk(n.Kids[1], inner)
		case NTry:
			walk(n.Kids[0], sc)
			walk(n.Kids[1], sc)
		}
	}
	walk(ctx.Fn.Body, stmtCtx{})
	return failed
}

// speculateNeverTaken matches guard shapes of the form
// `var == BIG`, `var > BIG`, `var >= BIG` with |BIG| >= trapCutoff.
func speculateNeverTaken(cond *Node) bool {
	if cond.Kind != NBinary {
		return false
	}
	switch cond.BinOp {
	case lang.OpEq, lang.OpGt, lang.OpGe:
	default:
		return false
	}
	l, r := cond.Kids[0], cond.Kids[1]
	if l.Kind != NVar || r.Kind != NConstInt {
		return false
	}
	v := r.IVal
	if v < 0 {
		v = -v
	}
	return v >= trapCutoff
}
