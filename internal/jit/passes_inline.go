package jit

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// passDereflect replaces reflective calls and field reads whose targets
// the compiler can resolve statically with direct operations. The VM has
// no diagnostic flag for this optimization (paper §5.1), so the events
// carry BehaviorNone and never reach the profile log — the fuzzer's
// guidance is blind to them by design.
func passDereflect(ctx *Context) error {
	var failed error
	ctx.Fn.Body = rewriteExprs(ctx.Fn.Body, func(n *Node) *Node {
		if failed != nil {
			return n
		}
		switch n.Kind {
		case NReflectCall:
			n.Kind = NCall
			n.Prov |= FromDereflect
			ctx.Cover("c2.dereflect.apply")
			failed = ctx.Record(Event{Pass: "dereflect", Behavior: BehaviorNone,
				Detail: fmt.Sprintf("call %s.%s", n.Class, n.Name), Prov: n.Prov})
		case NReflectGet:
			n.Kind = NFieldGet
			n.Prov |= FromDereflect
			ctx.Cover("c2.dereflect.apply")
			failed = ctx.Record(Event{Pass: "dereflect", Behavior: BehaviorNone,
				Detail: fmt.Sprintf("field %s.%s", n.Class, n.Name), Prov: n.Prov})
		}
		return n
	})
	return failed
}

// inliner carries inlining state for one compilation.
type inliner struct {
	ctx     *Context
	budget  int
	counter int
	cache   map[string]*Func
}

// passInline performs up to three rounds of call inlining:
//   - expression inlining for callees of the form `return <expr>;`
//   - statement inlining for void callees at statement position
//
// Synchronized callees get their bodies wrapped in a monitor region on
// the receiver ("monitors rewired", the Listing 1 obligation).
func passInline(ctx *Context, budget int) error {
	in := &inliner{ctx: ctx, budget: budget, cache: map[string]*Func{}}
	for round := 0; round < 3; round++ {
		before := in.counter
		if err := in.run(); err != nil {
			return err
		}
		if in.counter == before {
			break
		}
	}
	return nil
}

func (in *inliner) prefix() string {
	if in.ctx.Tier == vm.TierC1 {
		return "c1"
	}
	return "c2"
}

func (in *inliner) lookup(class, method string) *Func {
	key := class + "." + method
	if f, ok := in.cache[key]; ok {
		return f
	}
	prog := in.ctx.Env.Image().Program
	cl := prog.Class(class)
	if cl == nil {
		return nil
	}
	m := cl.Method(method)
	if m == nil {
		return nil
	}
	f, err := Lower(cl, m)
	if err != nil {
		f = nil
	}
	in.cache[key] = f
	return f
}

func (in *inliner) run() error {
	var failed error
	var visit func(n *Node, sc stmtCtx)
	visit = func(n *Node, sc stmtCtx) {
		if failed != nil {
			return
		}
		switch n.Kind {
		case NSeq:
			for i := 0; i < len(n.Kids); i++ {
				k := n.Kids[i]
				if repl, ok, err := in.tryStmtInline(k, sc); err != nil {
					failed = err
					return
				} else if ok {
					// Splice (declarations hoisted out of monitor regions
					// must live in this scope, not a nested one).
					n.Kids = append(n.Kids[:i], append(repl, n.Kids[i+1:]...)...)
					i += len(repl) - 1
					continue
				}
				visit(k, sc)
			}
		case NIf:
			visit(n.Kids[1], sc)
			if len(n.Kids) > 2 {
				visit(n.Kids[2], sc)
			}
		case NFor:
			inner := sc
			inner.LoopDepth++
			visit(n.Kids[2], inner)
		case NWhile:
			inner := sc
			inner.LoopDepth++
			visit(n.Kids[1], inner)
		case NSync:
			inner := sc
			inner.SyncDepth++
			visit(n.Kids[1], inner)
		case NTry:
			visit(n.Kids[0], sc)
			visit(n.Kids[1], sc)
		case NUncommonTrap:
			visit(n.Kids[0], sc)
		}
	}
	visit(in.ctx.Fn.Body, stmtCtx{})
	return failed
}

// tryStmtInline attempts to inline the calls reachable from one
// statement. It returns the replacement statement when a structural
// (synchronized or void-body) inline changed the statement shape.
func (in *inliner) tryStmtInline(stmt *Node, sc stmtCtx) ([]*Node, bool, error) {
	// First: expression inlining of non-synchronized `return expr`
	// callees anywhere inside the statement's expressions.
	var failed error
	var rewrite func(n *Node) *Node
	rewrite = func(n *Node) *Node {
		if failed != nil || n == nil {
			return n
		}
		for i, k := range n.Kids {
			if !k.Kind.IsStmt() {
				n.Kids[i] = rewrite(k)
			}
		}
		if n.Kind == NCall {
			if repl, ok, err := in.tryExprInline(n, sc, false); err != nil {
				failed = err
			} else if ok {
				return repl
			}
		}
		return n
	}
	switch stmt.Kind {
	case NDecl, NAssignVar, NExprStmt, NPrint, NReturn, NThrow, NAssignField, NAssignIndex, NIf, NFor, NWhile, NSync:
		for i, k := range stmt.Kids {
			if !k.Kind.IsStmt() {
				stmt.Kids[i] = rewrite(k)
			}
		}
	}
	if failed != nil {
		return nil, false, failed
	}

	// Second: structural inlining where the call is the statement's
	// direct expression — covers synchronized `return expr` callees
	// (the statement gets wrapped in a monitor region) and void callees.
	var call *Node
	switch stmt.Kind {
	case NDecl, NAssignVar:
		call = stmt.Kids[0]
	case NExprStmt:
		call = stmt.Kids[0]
	}
	if call == nil || call.Kind != NCall {
		return nil, false, nil
	}
	callee := in.lookup(call.Class, call.Name)
	if callee == nil {
		return nil, false, nil
	}
	if callee.Synchronized && callee.HasReceiver {
		return in.inlineSynchronized(stmt, call, callee, sc)
	}
	if stmt.Kind == NExprStmt && callee.Ret.Kind == lang.KindVoid {
		seq, ok, err := in.inlineVoidBody(call, callee, sc)
		if !ok || err != nil {
			return nil, ok, err
		}
		return []*Node{seq}, true, nil
	}
	return nil, false, nil
}

// tryExprInline inlines a `return expr` callee into the call site.
func (in *inliner) tryExprInline(call *Node, sc stmtCtx, allowSync bool) (*Node, bool, error) {
	callee := in.lookup(call.Class, call.Name)
	if callee == nil || (callee.Synchronized && !allowSync) {
		return nil, false, nil
	}
	body := callee.Body
	if len(body.Kids) != 1 || body.Kids[0].Kind != NReturn || len(body.Kids[0].Kids) == 0 {
		return nil, false, nil
	}
	if callee.Body.CountNodes() > in.budget {
		in.ctx.Cover(in.prefix() + ".inline.try")
		return nil, false, nil
	}
	expr := body.Kids[0].Kids[0].Clone()
	recv, args := CallArgs(call)
	if len(args) != len(callee.Params) {
		return nil, false, nil
	}

	// Substitution reorders argument evaluation relative to the call's
	// left-to-right order, so the bindings must commute: at most one may
	// be impure, and when one is, every other binding must be strongly
	// pure (constants and variable reads only — field reads could observe
	// the impure binding's writes). An impure binding must be used
	// exactly once; an unused binding must be pure (dropping it would
	// lose its effects).
	type binding struct {
		name string
		arg  *Node
	}
	var binds []binding
	if callee.HasReceiver {
		// The call site null-checks the receiver; the inlined body must
		// preserve that, so the receiver substitutes with an explicit
		// null check (impure: it can throw).
		if !IsPure(recv) {
			return nil, false, nil
		}
		checked := &Node{Kind: NNullCheck, Ty: recv.Ty, Kids: []*Node{recv}}
		binds = append(binds, binding{"this", checked})
	}
	for i, p := range callee.Params {
		binds = append(binds, binding{p.Name, args[i]})
	}
	impure := 0
	for _, b := range binds {
		if !IsPure(b.arg) {
			impure++
		}
	}
	if impure > 1 {
		return nil, false, nil
	}
	for _, b := range binds {
		pure := IsPure(b.arg)
		if impure == 1 && pure && !strongPure(b.arg) {
			return nil, false, nil
		}
		uses := countVarReads(expr, b.name)
		if uses == 0 && !pure {
			return nil, false, nil
		}
		if uses > 1 && !pure {
			return nil, false, nil
		}
		expr = substVar(expr, b.name, b.arg)
	}
	expr.AddProv(FromInline)
	in.counter++
	in.ctx.Cover(in.prefix() + ".inline.try")
	in.ctx.Cover(in.prefix() + ".inline.apply")
	in.ctx.EmitBehaviorf(profile.FlagPrintInlining, profile.LineInline, "@ %d %s::%s (%d nodes)   inline (hot)",
		in.counter, call.Class, call.Name, callee.Body.CountNodes())
	if err := in.ctx.Record(Event{Pass: "inline", Behavior: profile.BInline,
		Detail: call.Class + "." + call.Name, Prov: expr.Prov,
		SyncDepth: sc.SyncDepth, LoopDepth: sc.LoopDepth}); err != nil {
		return nil, false, err
	}
	return expr, true, nil
}

// inlineSynchronized inlines a synchronized instance callee by inlining
// its body expression and wrapping the whole statement in a monitor
// region on the receiver — the compiler obligation from Listing 1.
func (in *inliner) inlineSynchronized(stmt, call *Node, callee *Func, sc stmtCtx) ([]*Node, bool, error) {
	recv, _ := CallArgs(call)
	if recv == nil || recv.Kind != NVar {
		return nil, false, nil // need a re-evaluable monitor expression
	}
	// A declaration cannot move inside the monitor region (its scope
	// would shrink), so it is split into a hoisted default-initialized
	// declaration and an in-region assignment. Reference-typed results
	// have no expressible default and are not inlined this way.
	if stmt.Kind == NDecl && stmt.Ty.IsRef() {
		return nil, false, nil
	}
	inlined, ok, err := in.tryExprInline(call, sc, true)
	if err != nil || !ok {
		return nil, false, err
	}
	if stmt.Kind == NDecl {
		zero := &Node{Kind: NConstInt, IVal: 0, IsLong: stmt.Ty.Kind == lang.KindLong, Ty: stmt.Ty}
		if stmt.Ty.Kind == lang.KindBool {
			zero = &Node{Kind: NConstBool, IVal: 0, Ty: lang.Bool}
		}
		hoisted := &Node{Kind: NDecl, Name: stmt.Name, Ty: stmt.Ty,
			Prov: stmt.Prov | FromInline, Kids: []*Node{zero}}
		region := &Node{Kind: NAssignVar, Name: stmt.Name, Ty: stmt.Ty,
			Prov: stmt.Prov | FromInline, Kids: []*Node{inlined}}
		sync := &Node{Kind: NSync, Prov: FromInline | FromInlineSync,
			Kids: []*Node{recv.Clone(), Seq(region)}}
		return in.finishSyncInline([]*Node{hoisted, sync}, sync, call, sc)
	}
	stmt.Kids[0] = inlined
	sync := &Node{Kind: NSync, Prov: FromInline | FromInlineSync,
		Kids: []*Node{recv.Clone(), Seq(stmt)}}
	return in.finishSyncInline([]*Node{sync}, sync, call, sc)
}

// finishSyncInline applies defect flags, emits the rewiring log line and
// event, and returns the replacement statement.
func (in *inliner) finishSyncInline(result []*Node, sync *Node, call *Node, sc stmtCtx) ([]*Node, bool, error) {
	in.ctx.Cover(in.prefix() + ".inline.sync")
	if in.ctx.Tier == vm.TierC1 {
		in.ctx.Cover("c1.inline.sync_handler")
	}
	in.ctx.EmitBehaviorf(profile.FlagPrintInlining, profile.LineInlineSync, "@ %d %s::%s   inline (hot) monitors rewired",
		in.counter, call.Class, call.Name)
	if err := in.ctx.Record(Event{Pass: "inline", Behavior: profile.BInlineSync,
		Detail: call.Class + "." + call.Name, Prov: sync.Prov,
		SyncDepth: sc.SyncDepth, LoopDepth: sc.LoopDepth}); err != nil {
		return nil, false, err
	}
	// The hook observing the event above may have requested the defect:
	// the rewired monitor loses its exception-path release (the missing
	// fill_sync_handler case of Listing 1).
	if in.ctx.DropSyncCleanup {
		sync.NoExcCleanup = true
		in.ctx.DropSyncCleanup = false
	}
	return result, true, nil
}

// inlineVoidBody splices a void callee's statements into the call site,
// renaming locals and binding parameters through fresh temporaries.
func (in *inliner) inlineVoidBody(call *Node, callee *Func, sc stmtCtx) (*Node, bool, error) {
	if callee.Body.CountNodes() > in.budget {
		in.ctx.Cover(in.prefix() + ".inline.try")
		return nil, false, nil
	}
	// Reject callees with non-trailing returns (control flow we cannot
	// splice), recursion into the caller, and static synchronized
	// methods (their class-object monitor is not expressible here).
	if callee.Key() == in.ctx.Fn.Key() || callee.Synchronized {
		return nil, false, nil
	}
	bad := false
	callee.Body.Walk(func(m *Node) bool {
		if m.Kind == NReturn {
			bad = true
		}
		return true
	})
	// Allow exactly one trailing `return;`.
	kids := callee.Body.Kids
	if len(kids) > 0 && kids[len(kids)-1].Kind == NReturn && len(kids[len(kids)-1].Kids) == 0 {
		trailing := kids[len(kids)-1]
		count := 0
		callee.Body.Walk(func(m *Node) bool {
			if m.Kind == NReturn && m != trailing {
				count++
			}
			return true
		})
		bad = count > 0
	}
	if bad {
		return nil, false, nil
	}

	body := callee.Body.Clone()
	if len(body.Kids) > 0 && body.Kids[len(body.Kids)-1].Kind == NReturn {
		body.Kids = body.Kids[:len(body.Kids)-1]
	}
	in.counter++
	p := fmt.Sprintf("$inl%d_", in.counter)
	mapping := map[string]string{}
	body.Walk(func(m *Node) bool {
		switch m.Kind {
		case NDecl, NFor, NTry:
			mapping[m.Name] = p + m.Name
		}
		return true
	})
	for _, prm := range callee.Params {
		mapping[prm.Name] = p + prm.Name
	}
	if callee.HasReceiver {
		mapping["this"] = p + "this"
	}
	renameLocals(body, mapping)

	seq := Seq()
	recv, args := CallArgs(call)
	if callee.HasReceiver {
		checked := &Node{Kind: NNullCheck, Ty: recv.Ty, Kids: []*Node{recv}}
		seq.Kids = append(seq.Kids, &Node{Kind: NDecl, Name: p + "this",
			Ty: lang.ObjectType(callee.Class), Kids: []*Node{checked}})
	}
	for i, prm := range callee.Params {
		seq.Kids = append(seq.Kids, &Node{Kind: NDecl, Name: p + prm.Name,
			Ty: prm.Ty, Kids: []*Node{args[i]}})
	}
	seq.Kids = append(seq.Kids, body.Kids...)
	seq.AddProv(FromInline)

	in.ctx.Cover(in.prefix() + ".inline.try")
	in.ctx.Cover(in.prefix() + ".inline.apply")
	in.ctx.EmitBehaviorf(profile.FlagPrintInlining, profile.LineInline, "@ %d %s::%s (%d nodes)   inline (hot)",
		in.counter, call.Class, call.Name, callee.Body.CountNodes())
	if err := in.ctx.Record(Event{Pass: "inline", Behavior: profile.BInline,
		Detail: call.Class + "." + call.Name, Prov: seq.Prov,
		SyncDepth: sc.SyncDepth, LoopDepth: sc.LoopDepth}); err != nil {
		return nil, false, err
	}
	return seq, true, nil
}
