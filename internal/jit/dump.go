package jit

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// Dump renders a function's IR as an indented tree, with provenance
// annotations — the debugging view of what the optimizer did. Pass
// pipelines are easiest to diagnose by diffing Dump output before and
// after a pass (see the golden tests in passes_golden_test.go).
func Dump(f *Func) string {
	var b strings.Builder
	mods := ""
	if f.Synchronized {
		mods = "synchronized "
	}
	fmt.Fprintf(&b, "%sfunc %s(", mods, f.Key())
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Ty, p.Name)
	}
	fmt.Fprintf(&b, ") %s\n", f.Ret)
	dumpNode(&b, f.Body, 1)
	return b.String()
}

// DumpNode renders one subtree (exported for tests and tooling).
func DumpNode(n *Node) string {
	var b strings.Builder
	dumpNode(&b, n, 0)
	return b.String()
}

func dumpNode(b *strings.Builder, n *Node, depth int) {
	if n == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(describe(n))
	if n.Prov != 0 {
		fmt.Fprintf(b, "  <%s>", provString(n.Prov))
	}
	if n.NoExcCleanup {
		b.WriteString("  !no-exc-cleanup")
	}
	b.WriteString("\n")
	for _, k := range n.Kids {
		dumpNode(b, k, depth+1)
	}
}

func describe(n *Node) string {
	switch n.Kind {
	case NDecl:
		return fmt.Sprintf("decl %s %s", n.Ty, n.Name)
	case NAssignVar:
		return "assign " + n.Name
	case NAssignField:
		if n.Static {
			return fmt.Sprintf("putstatic %s.%s", n.Class, n.Name)
		}
		return fmt.Sprintf("putfield .%s", n.Name)
	case NFor:
		return fmt.Sprintf("for %s step %d", n.Name, n.Step)
	case NTry:
		return "try catch(" + n.Name + ")"
	case NUncommonTrap:
		return "uncommon_trap " + n.Name
	case NConstInt:
		if n.IsLong {
			return fmt.Sprintf("const %dL", n.IVal)
		}
		return fmt.Sprintf("const %d", n.IVal)
	case NConstBool:
		return fmt.Sprintf("const %v", n.IVal != 0)
	case NConstStr:
		return fmt.Sprintf("const %q", n.SVal)
	case NVar:
		return "var " + n.Name
	case NFieldGet:
		if n.Static {
			return fmt.Sprintf("getstatic %s.%s", n.Class, n.Name)
		}
		return fmt.Sprintf("getfield .%s", n.Name)
	case NBinary:
		return "binary " + n.BinOp.String()
	case NUnary:
		return "unary " + n.UnOp.String()
	case NCall:
		return fmt.Sprintf("call %s.%s", n.Class, n.Name)
	case NReflectCall:
		return fmt.Sprintf("reflect_call %s.%s", n.Class, n.Name)
	case NReflectGet:
		return fmt.Sprintf("reflect_get %s.%s", n.Class, n.Name)
	case NNew:
		return "new " + n.Class
	default:
		return n.Kind.String()
	}
}

var provNames = []struct {
	bit  Prov
	name string
}{
	{FromUnroll, "unroll"},
	{FromPeel, "peel"},
	{FromUnswitch, "unswitch"},
	{FromPreMainPost, "premainpost"},
	{FromInline, "inline"},
	{FromInlineSync, "inline-sync"},
	{FromCoarsen, "coarsen"},
	{FromScalarReplace, "scalar"},
	{FromDereflect, "dereflect"},
	{FromAutoboxElim, "autobox"},
	{FromGVN, "gvn"},
	{FromAlgebraic, "algebra"},
}

func provString(p Prov) string {
	var parts []string
	for _, pn := range provNames {
		if p.Has(pn.bit) {
			parts = append(parts, pn.name)
		}
	}
	return strings.Join(parts, ",")
}

// LowerProgramFunc lowers one method of a checked program by name
// (convenience for tests and tools: "T.work").
func LowerProgramFunc(p *lang.Program, key string) (*Func, error) {
	for _, cl := range p.Classes {
		for _, m := range cl.Methods {
			if cl.Name+"."+m.Name == key {
				return Lower(cl, m)
			}
		}
	}
	return nil, fmt.Errorf("jit: no method %q", key)
}
