package jit

import (
	"repro/internal/profile"
)

// passRSE removes redundant stores: an assignment whose value is dead
// because a later assignment to the same variable (or the same field of
// the same receiver) overwrites it with no intervening read and no
// intervening statement that could throw (a handler might observe the
// stored value). A seeded defect (ctx.DropNextStore) makes the pass
// delete the *live* store instead — the classic redundancy-elimination
// miscompilation.
func passRSE(ctx *Context, prefix string) error {
	var failed error
	forEachSeq(ctx.Fn.Body, func(seq *Node) {
		if failed != nil {
			return
		}
		for i := 0; i < len(seq.Kids); i++ {
			k := seq.Kids[i]
			switch k.Kind {
			case NAssignVar:
				if !IsPure(k.Kids[0]) {
					continue
				}
				for j := i + 1; j < len(seq.Kids); j++ {
					next := seq.Kids[j]
					if next.Kind == NAssignVar && next.Name == k.Name &&
						IsPure(next.Kids[0]) && !ReadsVar(next.Kids[0], k.Name) {
						ctx.Cover(prefix + ".rse.apply")
						ctx.EmitBehaviorf(profile.FlagTraceRedundantStores, profile.LineRedundantStore, "Removed redundant store to %s in %s", k.Name, ctx.Fn.Key())
						failed = ctx.Record(Event{Pass: "rse", Behavior: profile.BRedundantStore,
							Detail: k.Name, Prov: provOf(seq.Kids[i])})
						dead := i
						if ctx.DropNextStore {
							dead = j // defect: remove the live store
							ctx.DropNextStore = false
						}
						removed := seq.Kids[dead]
						seq.Kids[dead] = &Node{Kind: NNop, Prov: removed.Prov}
						break
					}
					if !rseTransparent(next) || ReadsVar(next, k.Name) {
						break
					}
				}
				if failed != nil {
					return
				}
			case NAssignField:
				if k.Static || k.Kids[0].Kind != NVar || !IsPure(k.Kids[1]) {
					continue
				}
				recvName, fieldName := k.Kids[0].Name, k.Name
				for j := i + 1; j < len(seq.Kids); j++ {
					next := seq.Kids[j]
					if next.Kind == NAssignField && !next.Static && next.Name == fieldName &&
						next.Kids[0].Kind == NVar && next.Kids[0].Name == recvName &&
						IsPure(next.Kids[1]) && !readsField(next.Kids[1], fieldName) {
						removed := seq.Kids[i]
						seq.Kids[i] = &Node{Kind: NNop, Prov: removed.Prov}
						ctx.Cover(prefix + ".rse.apply")
						ctx.EmitBehaviorf(profile.FlagTraceRedundantStores, profile.LineRedundantStore, "Removed redundant store to %s.%s in %s", recvName, fieldName, ctx.Fn.Key())
						failed = ctx.Record(Event{Pass: "rse", Behavior: profile.BRedundantStore,
							Detail: recvName + "." + fieldName, Prov: provOf(removed)})
						break
					}
					if !rseTransparent(next) || readsField(next, fieldName) ||
						assignsAnywhere(next, recvName) {
						break
					}
				}
				if failed != nil {
					return
				}
			}
		}
	})
	return failed
}

// rseTransparent reports whether the scan window may extend across the
// statement: it must not throw (a handler could observe the dead store),
// not transfer control, and not call out.
func rseTransparent(n *Node) bool {
	switch n.Kind {
	case NNop:
		return true
	case NDecl, NAssignVar, NPrint:
		return IsPure(n.Kids[0])
	}
	return false
}

func assignsAnywhere(n *Node, name string) bool {
	found := false
	n.Walk(func(m *Node) bool {
		if (m.Kind == NAssignVar || m.Kind == NDecl) && m.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// readsField reports whether the subtree reads the named field (of any
// receiver — conservative) or calls out (which could read it).
func readsField(n *Node, field string) bool {
	found := false
	n.Walk(func(m *Node) bool {
		switch m.Kind {
		case NFieldGet, NReflectGet:
			if m.Name == field {
				found = true
			}
		case NCall, NReflectCall:
			found = true
		}
		return !found
	})
	return found
}

// passDCE removes dead code: statements after a return/throw,
// branches with constant conditions, counted loops with zero trips,
// pure expression statements, and pure stores to never-read locals.
func passDCE(ctx *Context, prefix string) error {
	var failed error
	record := func(what string, prov Prov) {
		if failed != nil {
			return
		}
		ctx.Cover(prefix + ".dce.apply")
		ctx.EmitBehaviorf(profile.FlagTraceDeadCode, profile.LineDCE, "DCE: removed %s in %s", what, ctx.Fn.Key())
		failed = ctx.Record(Event{Pass: "dce", Behavior: profile.BDCE, Detail: what, Prov: prov})
	}

	for round := 0; round < 2 && failed == nil; round++ {
		// Unreachable code after a terminator.
		forEachSeq(ctx.Fn.Body, func(seq *Node) {
			for i, k := range seq.Kids {
				if k.Kind == NReturn || k.Kind == NThrow {
					if i+1 < len(seq.Kids) {
						var prov Prov
						for _, dead := range seq.Kids[i+1:] {
							prov |= provOf(dead)
						}
						seq.Kids = seq.Kids[:i+1]
						record("unreachable code", prov)
					}
					break
				}
			}
		})
		if failed != nil {
			return failed
		}

		// Constant branches, zero-trip loops, pure expression statements.
		forEachSeq(ctx.Fn.Body, func(seq *Node) {
			for i, k := range seq.Kids {
				switch k.Kind {
				case NIf:
					if k.Kids[0].Kind != NConstBool {
						continue
					}
					var taken *Node
					if k.Kids[0].IVal != 0 {
						taken = k.Kids[1]
					} else if len(k.Kids) > 2 {
						taken = k.Kids[2]
					} else {
						taken = &Node{Kind: NNop}
					}
					taken.Prov |= k.Prov
					seq.Kids[i] = taken
					record("dead branch", provOf(k))
				case NFor:
					if constTrip(k) == 0 {
						seq.Kids[i] = &Node{Kind: NNop, Prov: k.Prov}
						record("zero-trip loop", provOf(k))
					}
				case NExprStmt:
					if IsPure(k.Kids[0]) {
						seq.Kids[i] = &Node{Kind: NNop, Prov: k.Prov}
						record("pure expression statement", provOf(k))
					}
				}
				if failed != nil {
					return
				}
			}
		})
		if failed != nil {
			return failed
		}

		// Dead stores to locals never read anywhere in the method. Only
		// uniquely declared names are candidates (shadowing would alias).
		declCount := map[string]int{}
		reads := map[string]int{}
		ctx.Fn.Body.Walk(func(n *Node) bool {
			switch n.Kind {
			case NDecl:
				declCount[n.Name]++
			case NFor, NTry:
				declCount[n.Name] += 2 // loop/catch vars are not candidates
			case NVar:
				reads[n.Name]++
			}
			return true
		})
		forEachSeq(ctx.Fn.Body, func(seq *Node) {
			for i, k := range seq.Kids {
				if failed != nil {
					return
				}
				switch k.Kind {
				case NDecl:
					if declCount[k.Name] == 1 && reads[k.Name] == 0 && IsPure(k.Kids[0]) {
						seq.Kids[i] = &Node{Kind: NNop, Prov: k.Prov}
						record("dead local "+k.Name, provOf(k))
					}
				case NAssignVar:
					if declCount[k.Name] <= 1 && reads[k.Name] == 0 && IsPure(k.Kids[0]) {
						seq.Kids[i] = &Node{Kind: NNop, Prov: k.Prov}
						record("dead store "+k.Name, provOf(k))
					}
				}
			}
		})
	}
	return failed
}
