package jit

import (
	"repro/internal/profile"
)

// passEscapeAnalysis classifies every locally allocated object
// (NDecl name = new C()) by how far it escapes:
//
//	NoEscape     — only field accesses and monitor use on the local
//	ArgEscape    — additionally passed to calls (as arg or receiver)
//	GlobalEscape — stored to fields/arrays/statics/other locals,
//	               returned, printed, or compared by identity
//
// The classification feeds lock elision and scalar replacement.
func passEscapeAnalysis(ctx *Context) error {
	ctx.Escape = map[string]EscapeState{}
	body := ctx.Fn.Body

	// Candidates: locals declared exactly once, initialized with new,
	// and never reassigned.
	declCount := map[string]int{}
	body.Walk(func(n *Node) bool {
		if n.Kind == NDecl || n.Kind == NAssignVar {
			declCount[n.Name]++
		}
		return true
	})
	var candidates []string
	body.Walk(func(n *Node) bool {
		if n.Kind == NDecl && n.Kids[0].Kind == NNew && declCount[n.Name] == 1 {
			candidates = append(candidates, n.Name)
		}
		return true
	})
	if len(candidates) == 0 {
		return nil
	}
	ctx.Cover("c2.escape.analyze")

	for _, name := range candidates {
		state := classifyEscape(body, name)
		ctx.Escape[name] = state
		switch state {
		case NoEscape:
			ctx.Cover("c2.escape.noescape")
			ctx.EmitBehaviorf(profile.FlagPrintEscapeAnalysis, profile.LineEscapeNone, "%s is NoEscape", name)
			if err := ctx.Record(Event{Pass: "escape", Behavior: profile.BEscapeNone, Detail: name}); err != nil {
				return err
			}
		case ArgEscape:
			ctx.Cover("c2.escape.argescape")
			ctx.EmitBehaviorf(profile.FlagPrintEscapeAnalysis, profile.LineEscapeArg, "%s is ArgEscape", name)
			if err := ctx.Record(Event{Pass: "escape", Behavior: profile.BEscapeArg, Detail: name}); err != nil {
				return err
			}
		}
	}
	return nil
}

// classifyEscape inspects every use of the named local.
func classifyEscape(body *Node, name string) EscapeState {
	state := NoEscape
	raise := func(s EscapeState) {
		if s > state {
			state = s
		}
	}
	// reads reports whether an expression subtree reads the local
	// anywhere *except* in allowed receiver positions.
	var scanExpr func(n *Node, allowRecv bool)
	scanExpr = func(n *Node, allowRecv bool) {
		if n == nil {
			return
		}
		switch n.Kind {
		case NVar:
			if n.Name == name {
				raise(GlobalEscape) // value position
			}
			return
		case NFieldGet, NReflectGet:
			if len(n.Kids) == 1 {
				if n.Kids[0].Kind == NVar && n.Kids[0].Name == name {
					return // receiver of a field read: no escape
				}
				scanExpr(n.Kids[0], false)
			}
			return
		case NCall, NReflectCall:
			recv, args := CallArgs(n)
			if recv != nil {
				if recv.Kind == NVar && recv.Name == name {
					raise(ArgEscape)
				} else {
					scanExpr(recv, false)
				}
			}
			for _, a := range args {
				if a.Kind == NVar && a.Name == name {
					raise(ArgEscape)
				} else {
					scanExpr(a, false)
				}
			}
			return
		case NBinary:
			// Identity comparison pins the object.
			if n.BinOp.IsComparison() {
				for _, k := range n.Kids {
					if k.Kind == NVar && k.Name == name {
						raise(GlobalEscape)
					}
				}
			}
		}
		for _, k := range n.Kids {
			if !k.Kind.IsStmt() {
				scanExpr(k, false)
			}
		}
	}

	body.Walk(func(n *Node) bool {
		switch n.Kind {
		case NDecl:
			if n.Name != name { // our own init is the allocation
				if n.Kids[0].Kind == NVar && n.Kids[0].Name == name {
					raise(GlobalEscape)
				} else {
					scanExpr(n.Kids[0], false)
				}
			}
		case NAssignVar:
			if n.Kids[0].Kind == NVar && n.Kids[0].Name == name {
				raise(GlobalEscape)
			} else {
				scanExpr(n.Kids[0], false)
			}
		case NAssignField:
			// receiver position fine; value position escapes
			if n.Static {
				scanExprValue(n.Kids[0], name, raise, scanExpr)
			} else {
				if !(n.Kids[0].Kind == NVar && n.Kids[0].Name == name) {
					scanExpr(n.Kids[0], false)
				}
				scanExprValue(n.Kids[1], name, raise, scanExpr)
			}
		case NAssignIndex:
			scanExpr(n.Kids[0], false)
			scanExpr(n.Kids[1], false)
			scanExprValue(n.Kids[2], name, raise, scanExpr)
		case NReturn:
			if len(n.Kids) > 0 {
				scanExprValue(n.Kids[0], name, raise, scanExpr)
			}
		case NPrint:
			scanExprValue(n.Kids[0], name, raise, scanExpr)
		case NThrow, NExprStmt, NIf, NFor, NWhile:
			for _, k := range n.Kids {
				if !k.Kind.IsStmt() {
					scanExpr(k, false)
				}
			}
		case NSync:
			// Monitor use of the local itself is not an escape.
			if !(n.Kids[0].Kind == NVar && n.Kids[0].Name == name) {
				scanExpr(n.Kids[0], false)
			}
		}
		return true
	})
	return state
}

func scanExprValue(n *Node, name string, raise func(EscapeState), scanExpr func(*Node, bool)) {
	if n.Kind == NVar && n.Name == name {
		raise(GlobalEscape)
		return
	}
	scanExpr(n, false)
}

// passLockElide removes synchronized regions whose monitor provably
// never escapes the method (HotSpot's EliminateLocks on NoEscape
// objects), and regions locking a freshly allocated object inline.
func passLockElide(ctx *Context) error {
	eliminated := 0
	var failed error
	var walk func(n *Node, sc stmtCtx)
	walk = func(n *Node, sc stmtCtx) {
		if failed != nil || n == nil || !n.Kind.IsStmt() {
			return
		}
		if n.Kind == NSeq {
			for i := 0; i < len(n.Kids); i++ {
				k := n.Kids[i]
				if k.Kind == NSync && elidableMonitor(ctx, k.Kids[0]) {
					eliminated++
					body := k.Kids[1]
					body.Prov |= k.Prov
					n.Kids[i] = body
					ctx.Cover("c2.locks.eliminate")
					ctx.EmitBehaviorf(profile.FlagPrintEliminateLocks, profile.LineLockElim, "++++ Eliminated: %d Lock", eliminated)
					failed = ctx.Record(Event{Pass: "locks", Behavior: profile.BLockElim,
						Detail: ctx.Fn.Key(), Prov: provOf(k), SyncDepth: sc.SyncDepth, LoopDepth: sc.LoopDepth})
					if failed != nil {
						return
					}
					i-- // revisit the replacement (it may hold nested syncs)
					continue
				}
				walk(k, sc)
			}
			return
		}
		switch n.Kind {
		case NIf:
			walk(n.Kids[1], sc)
			if len(n.Kids) > 2 {
				walk(n.Kids[2], sc)
			}
		case NFor:
			inner := sc
			inner.LoopDepth++
			walk(n.Kids[2], inner)
		case NWhile:
			inner := sc
			inner.LoopDepth++
			walk(n.Kids[1], inner)
		case NSync:
			inner := sc
			inner.SyncDepth++
			walk(n.Kids[1], inner)
		case NTry:
			walk(n.Kids[0], sc)
			walk(n.Kids[1], sc)
		case NUncommonTrap:
			walk(n.Kids[0], sc)
		}
	}
	walk(ctx.Fn.Body, stmtCtx{})
	return failed
}

func elidableMonitor(ctx *Context, mon *Node) bool {
	if mon.Kind == NNew {
		return true // lock on a fresh allocation never contends
	}
	if mon.Kind == NVar && ctx.Escape != nil && ctx.Escape[mon.Name] == NoEscape {
		return true
	}
	return false
}

// passNestedLocks removes re-entrant inner synchronized regions: an
// inner region whose monitor is provably the same object as an enclosing
// region's monitor is redundant (the thread already holds the lock).
func passNestedLocks(ctx *Context) error {
	// Monitors must be stable expressions: locals never reassigned, string
	// literals, or static fields never written in this method.
	assigned := map[string]bool{}
	staticWritten := map[string]bool{}
	ctx.Fn.Body.Walk(func(n *Node) bool {
		switch n.Kind {
		case NAssignVar:
			assigned[n.Name] = true
		case NAssignField:
			if n.Static {
				staticWritten[n.Class+"."+n.Name] = true
			}
		}
		return true
	})
	stable := func(mon *Node) bool {
		switch mon.Kind {
		case NVar:
			return !assigned[mon.Name]
		case NConstStr:
			return true
		case NFieldGet:
			return mon.Static && !staticWritten[mon.Class+"."+mon.Name]
		}
		return false
	}

	var failed error
	var walk func(n *Node, enclosing []*Node, sc stmtCtx)
	walk = func(n *Node, enclosing []*Node, sc stmtCtx) {
		if failed != nil || n == nil || !n.Kind.IsStmt() {
			return
		}
		if n.Kind == NSeq {
			for i := 0; i < len(n.Kids); i++ {
				k := n.Kids[i]
				if k.Kind == NSync && stable(k.Kids[0]) {
					redundant := false
					for _, outer := range enclosing {
						if SameSimpleExpr(outer, k.Kids[0]) {
							redundant = true
							break
						}
					}
					if redundant {
						body := k.Kids[1]
						body.Prov |= k.Prov
						n.Kids[i] = body
						ctx.Cover("c2.locks.nested")
						ctx.EmitBehaviorf(profile.FlagPrintEliminateLocks, profile.LineNestedLockElim, "++++ Eliminated: 1 Lock (nested)")
						failed = ctx.Record(Event{Pass: "locks", Behavior: profile.BNestedLockElim,
							Detail: ctx.Fn.Key(), Prov: provOf(k), SyncDepth: sc.SyncDepth, LoopDepth: sc.LoopDepth})
						if failed != nil {
							return
						}
						i--
						continue
					}
				}
				walk(k, enclosing, sc)
			}
			return
		}
		switch n.Kind {
		case NIf:
			walk(n.Kids[1], enclosing, sc)
			if len(n.Kids) > 2 {
				walk(n.Kids[2], enclosing, sc)
			}
		case NFor:
			inner := sc
			inner.LoopDepth++
			walk(n.Kids[2], enclosing, inner)
		case NWhile:
			inner := sc
			inner.LoopDepth++
			walk(n.Kids[1], enclosing, inner)
		case NSync:
			inner := sc
			inner.SyncDepth++
			enc := enclosing
			if stable(n.Kids[0]) {
				enc = append(append([]*Node(nil), enclosing...), n.Kids[0])
			}
			walk(n.Kids[1], enc, inner)
		case NTry:
			walk(n.Kids[0], enclosing, sc)
			walk(n.Kids[1], enclosing, sc)
		case NUncommonTrap:
			walk(n.Kids[0], enclosing, sc)
		}
	}
	walk(ctx.Fn.Body, nil, stmtCtx{})
	return failed
}

// passLockCoarsen merges runs of adjacent synchronized regions on the
// same monitor into one region (HotSpot's lock coarsening in macro
// expansion). It runs after loop unrolling, so fully unrolled
// synchronized loop bodies — now adjacent sibling regions — are prime
// input; the provenance union on the event is how bug predicates see
// that interaction.
func passLockCoarsen(ctx *Context) error {
	var failed error
	forEachSeqDeep(ctx.Fn.Body, func(seq *Node, sc stmtCtx) {
		if failed != nil {
			return
		}
		for i := 0; i < len(seq.Kids); i++ {
			first := seq.Kids[i]
			if first.Kind != NSync || !coarsenableMonitor(first.Kids[0]) {
				continue
			}
			// Collect the run: [sync, (transparent stmts), sync, ...].
			run := []int{i}
			j := i + 1
			for j < len(seq.Kids) {
				k := seq.Kids[j]
				if k.Kind == NSync && SameSimpleExpr(first.Kids[0], k.Kids[0]) {
					run = append(run, j)
					j++
					continue
				}
				if transparentForCoarsen(k, first.Kids[0]) {
					j++
					continue
				}
				break
			}
			// Trim trailing transparent statements past the last sync.
			last := run[len(run)-1]
			if len(run) < 2 {
				continue
			}
			// Merge: bodies and intervening statements, in order.
			merged := Seq()
			var prov Prov
			for idx := i; idx <= last; idx++ {
				k := seq.Kids[idx]
				prov |= provOf(k)
				if k.Kind == NSync {
					merged.Kids = append(merged.Kids, k.Kids[1])
				} else {
					merged.Kids = append(merged.Kids, k)
				}
			}
			coarse := &Node{Kind: NSync, Prov: first.Prov | FromCoarsen,
				Kids: []*Node{first.Kids[0], merged}}
			seq.Kids = append(seq.Kids[:i], append([]*Node{coarse}, seq.Kids[last+1:]...)...)

			ctx.Cover("c2.locks.coarsen")
			ctx.Cover("c2.macro.expand")
			ctx.EmitBehaviorf(profile.FlagPrintLockCoarsening, profile.LineLockCoarsen, "Coarsened %d locks on %s in %s",
				len(run), monDesc(first.Kids[0]), ctx.Fn.Key())
			failed = ctx.Record(Event{Pass: "locks", Behavior: profile.BLockCoarsen,
				Detail: ctx.Fn.Key(), Prov: prov | FromCoarsen,
				SyncDepth: sc.SyncDepth, LoopDepth: sc.LoopDepth})
			if failed != nil {
				return
			}
			if ctx.SkipCoarsenUnlock {
				// Seeded defect (requested by the hook observing the
				// event): the merged region's exception path loses its
				// unlock.
				coarse.NoExcCleanup = true
				ctx.SkipCoarsenUnlock = false
			}
		}
	})
	return failed
}

// coarsenableMonitor limits coarsening to stable simple monitors.
func coarsenableMonitor(mon *Node) bool {
	switch mon.Kind {
	case NVar, NConstStr:
		return true
	case NFieldGet:
		return mon.Static
	}
	return false
}

// transparentForCoarsen reports whether a statement between two lock
// regions can safely move inside the merged region: pure-value local
// work that cannot touch the monitor reference.
func transparentForCoarsen(n *Node, mon *Node) bool {
	switch n.Kind {
	case NNop:
		return true
	case NAssignVar:
		// Declarations must not move (their scope would shrink);
		// assignments to existing locals are safe to pull inside.
		if mon.Kind == NVar && n.Name == mon.Name {
			return false
		}
		return IsPure(n.Kids[0])
	}
	return false
}

func monDesc(mon *Node) string {
	switch mon.Kind {
	case NVar:
		return mon.Name
	case NConstStr:
		return "\"" + mon.SVal + "\""
	case NFieldGet:
		return mon.Class + "." + mon.Name
	}
	return "monitor"
}

// forEachSeqDeep is forEachSeq with nesting context.
func forEachSeqDeep(root *Node, fn func(seq *Node, sc stmtCtx)) {
	walkStmtsCtx(root, stmtCtx{}, func(n *Node, sc stmtCtx) {
		if n.Kind == NSeq {
			fn(n, sc)
		}
	})
}
