package jit

import (
	"repro/internal/lang"
	"repro/internal/profile"
)

// passScalarReplace replaces NoEscape allocations whose remaining uses
// are only field reads and writes with one scalar local per field
// (HotSpot's EliminateAllocations). It runs after the lock passes, which
// remove monitor uses of such objects; an allocation still used as a
// monitor is left alone.
func passScalarReplace(ctx *Context) error {
	if ctx.Escape == nil {
		return nil
	}
	img := ctx.Env.Image()
	for name, st := range ctx.Escape {
		if st != NoEscape {
			continue
		}
		if !scalarReplaceable(ctx.Fn.Body, name) {
			continue
		}
		// Find the declaration and the class's instance fields.
		var decl *Node
		ctx.Fn.Body.Walk(func(n *Node) bool {
			if n.Kind == NDecl && n.Name == name && n.Kids[0].Kind == NNew {
				decl = n
			}
			return true
		})
		if decl == nil {
			continue
		}
		cf := img.Class(decl.Kids[0].Class)
		if cf == nil {
			continue
		}
		refField := false
		var fields []string
		for _, f := range cf.Fields {
			if f.Static {
				continue
			}
			if f.IsRef {
				refField = true
			}
			fields = append(fields, f.Name)
		}
		if refField {
			continue // reference fields would need a null constant
		}

		// Rewrite the declaration into per-field scalar declarations.
		repl := Seq()
		repl.Prov = decl.Prov | FromScalarReplace
		for _, f := range fields {
			repl.Kids = append(repl.Kids, &Node{Kind: NDecl, Name: name + "$" + f,
				Ty: lang.Int, Prov: repl.Prov, Kids: []*Node{ConstInt(0)}})
		}
		*decl = *repl

		// Rewrite field accesses into scalar reads/writes.
		rewriteFieldUses(ctx.Fn.Body, name)

		ctx.Cover("c2.scalar.replace")
		ctx.EmitBehaviorf(profile.FlagPrintEliminateAllocations, profile.LineScalarReplace, "Scalar replaced allocation %s (%s)", name, cf.Name)
		if err := ctx.Record(Event{Pass: "escape", Behavior: profile.BScalarReplace,
			Detail: name, Prov: repl.Prov}); err != nil {
			return err
		}
	}
	return nil
}

// scalarReplaceable verifies the local's only uses are field get/set
// with the local as a direct receiver.
func scalarReplaceable(body *Node, name string) bool {
	ok := true
	var visit func(n *Node, recvSlot bool)
	visit = func(n *Node, recvSlot bool) {
		if n == nil || !ok {
			return
		}
		if n.Kind == NVar && n.Name == name && !recvSlot {
			ok = false
			return
		}
		switch n.Kind {
		case NFieldGet:
			if len(n.Kids) == 1 {
				visit(n.Kids[0], true)
			}
		case NAssignField:
			if !n.Static {
				visit(n.Kids[0], true)
				visit(n.Kids[1], false)
				return
			}
			visit(n.Kids[0], false)
		default:
			for _, k := range n.Kids {
				visit(k, false)
			}
		}
	}
	// Scan all statements; the declaration's own init (new C()) is exempt.
	body.Walk(func(n *Node) bool {
		if !ok {
			return false
		}
		switch n.Kind {
		case NDecl:
			if n.Name == name {
				return false // skip the allocation init
			}
			visit(n.Kids[0], false)
			return false
		case NAssignField:
			if !n.Static {
				visit(n.Kids[0], true)
				visit(n.Kids[1], false)
				return false
			}
			visit(n.Kids[0], false)
			return false
		case NFieldGet:
			if len(n.Kids) == 1 {
				visit(n.Kids[0], true)
			}
			return false
		case NVar:
			if n.Name == name {
				ok = false
			}
		}
		return true
	})
	return ok
}

// rewriteFieldUses converts t.f reads and writes into t$f locals.
func rewriteFieldUses(body *Node, name string) {
	rewriteExprs(body, func(n *Node) *Node {
		switch n.Kind {
		case NFieldGet:
			if len(n.Kids) == 1 && n.Kids[0].Kind == NVar && n.Kids[0].Name == name {
				return &Node{Kind: NVar, Name: name + "$" + n.Name, Ty: n.Ty,
					Prov: n.Prov | FromScalarReplace}
			}
		case NAssignField:
			if !n.Static && n.Kids[0].Kind == NVar && n.Kids[0].Name == name {
				return &Node{Kind: NAssignVar, Name: name + "$" + n.Name, Ty: n.Ty,
					Prov: n.Prov | FromScalarReplace, Kids: []*Node{n.Kids[1]}}
			}
		}
		return n
	})
}
