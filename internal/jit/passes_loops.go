package jit

import (
	"repro/internal/lang"
	"repro/internal/profile"
)

// Loop-optimization tuning, mirroring HotSpot's LoopUnrollLimit family.
const (
	fullUnrollLimit = 8  // loops with at most this many trips fully unroll
	partialFactor   = 4  // partial-unroll replication factor
	partialMinTrips = 16 // minimum constant trip count for partial unroll
	loopBodyNodeCap = 96 // bodies larger than this are not unrolled
)

// coverLoopTree marks the loop-tree region when the method has loops.
func coverLoopTree(ctx *Context) {
	has := false
	ctx.Fn.Body.Walk(func(n *Node) bool {
		if n.Kind == NFor || n.Kind == NWhile {
			has = true
		}
		return true
	})
	if has {
		ctx.Cover("c2.loop.tree")
	}
}

// passLoopPeel peels the first iteration of counted loops whose body
// branches on the loop variable — after peeling, the in-loop branch can
// fold for the remaining iterations. Requires a constant, nonzero trip
// count so the peeled copy is unconditionally correct.
func passLoopPeel(ctx *Context) error {
	var failed error
	forEachSeq(ctx.Fn.Body, func(seq *Node) {
		if failed != nil {
			return
		}
		for i := 0; i < len(seq.Kids); i++ {
			n := seq.Kids[i]
			if n.Kind != NFor || n.Prov.Has(FromPeel) {
				continue
			}
			trips := constTrip(n)
			if trips < 1 {
				continue
			}
			body := n.Kids[2]
			if body.CountNodes() > loopBodyNodeCap || AssignsVar(body, n.Name) {
				continue
			}
			// Peel only when the body branches on the loop variable.
			branches := false
			body.Walk(func(m *Node) bool {
				if m.Kind == NIf && ReadsVar(m.Kids[0], n.Name) {
					branches = true
				}
				return true
			})
			if !branches {
				continue
			}
			peeled := body.Clone()
			peeled = substVar(peeled, n.Name, ConstInt(n.Kids[0].IVal))
			peeled.AddProv(FromPeel)
			n.Kids[0] = ConstInt(n.Kids[0].IVal + n.Step)
			n.Prov |= FromPeel

			seq.Kids = append(seq.Kids, nil)
			copy(seq.Kids[i+1:], seq.Kids[i:])
			seq.Kids[i] = peeled
			i++ // skip over the loop we just shifted

			ctx.Cover("c2.loop.peel")
			ctx.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LinePeel, "Peel  %s trip=%d", ctx.Fn.Key(), trips)
			failed = ctx.Record(Event{Pass: "loop", Behavior: profile.BPeel,
				Detail: ctx.Fn.Key(), Prov: peeled.Prov | provOf(n)})
			if failed != nil {
				return
			}
		}
	})
	return failed
}

// passLoopUnswitch hoists a loop-invariant branch out of a loop,
// duplicating the loop under each arm of the hoisted test.
func passLoopUnswitch(ctx *Context) error {
	var failed error
	forEachSeq(ctx.Fn.Body, func(seq *Node) {
		if failed != nil {
			return
		}
		for i, n := range seq.Kids {
			if n.Kind != NFor || n.Prov.Has(FromUnswitch) {
				continue
			}
			body := n.Kids[2]
			if body.CountNodes() > loopBodyNodeCap {
				continue
			}
			// Find a top-level if in the body with a loop-invariant,
			// strongly pure condition.
			idx := -1
			for j, k := range body.Kids {
				if k.Kind != NIf {
					continue
				}
				cond := k.Kids[0]
				if !strongPure(cond) || ReadsVar(cond, n.Name) {
					continue
				}
				invariant := true
				for name := range varsRead(cond) {
					if AssignsVar(body, name) {
						invariant = false
					}
				}
				if invariant {
					idx = j
					break
				}
			}
			if idx < 0 {
				continue
			}
			iff := body.Kids[idx]
			cond := iff.Kids[0]

			thenLoop := n.Clone()
			thenLoop.Kids[2].Kids[idx] = iff.Kids[1]
			elseLoop := n.Clone()
			if len(iff.Kids) > 2 {
				elseLoop.Kids[2].Kids[idx] = iff.Kids[2].Clone()
			} else {
				elseLoop.Kids[2].Kids[idx] = &Node{Kind: NNop}
			}
			thenLoop.AddProv(FromUnswitch)
			elseLoop.AddProv(FromUnswitch)
			hoisted := &Node{Kind: NIf, Prov: FromUnswitch,
				Kids: []*Node{cond.Clone(), Seq(thenLoop), Seq(elseLoop)}}
			seq.Kids[i] = hoisted

			ctx.Cover("c2.loop.unswitch")
			ctx.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LineUnswitch, "Unswitch  %s", ctx.Fn.Key())
			failed = ctx.Record(Event{Pass: "loop", Behavior: profile.BUnswitch,
				Detail: ctx.Fn.Key(), Prov: hoisted.Prov | provOf(n)})
			if failed != nil {
				return
			}
		}
	})
	return failed
}

// passLoopUnroll unrolls counted loops with constant bounds: small trip
// counts unroll fully; larger counts divisible by the factor unroll
// partially behind a pre/main/post split. Fully unrolled synchronized
// bodies become adjacent lock regions — the raw material for lock
// coarsening, and the paper's central interaction (JDK-8312744).
func passLoopUnroll(ctx *Context) error {
	var failed error
	forEachSeq(ctx.Fn.Body, func(seq *Node) {
		if failed != nil {
			return
		}
		for i, n := range seq.Kids {
			if n.Kind != NFor || n.Prov.Has(FromUnroll) {
				continue
			}
			trips := constTrip(n)
			if trips < 1 {
				continue
			}
			body := n.Kids[2]
			if body.CountNodes() > loopBodyNodeCap || AssignsVar(body, n.Name) {
				continue
			}
			from := n.Kids[0].IVal

			if trips <= fullUnrollLimit {
				repl := Seq()
				for k := int64(0); k < trips; k++ {
					copyK := body.Clone()
					copyK = substVar(copyK, n.Name, ConstInt(from+k*n.Step))
					copyK.AddProv(FromUnroll)
					repl.Kids = append(repl.Kids, copyK.Kids...)
				}
				repl.Prov |= FromUnroll
				seq.Kids[i] = repl
				ctx.Cover("c2.loop.unroll")
				ctx.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LineUnroll, "Unroll %d(%d)", trips, trips)
				failed = ctx.Record(Event{Pass: "loop", Behavior: profile.BUnroll,
					Detail: ctx.Fn.Key(), Prov: repl.Prov | provOf(n)})
				if failed != nil {
					return
				}
				continue
			}

			if trips >= partialMinTrips && trips%partialFactor == 0 {
				newBody := Seq()
				for k := int64(0); k < partialFactor; k++ {
					copyK := body.Clone()
					if k > 0 {
						iPlus := &Node{Kind: NBinary, BinOp: lang.OpAdd, Ty: lang.Int,
							Kids: []*Node{Var(n.Name, lang.Int), ConstInt(k * n.Step)}}
						copyK = substVar(copyK, n.Name, iPlus)
					}
					copyK.AddProv(FromUnroll)
					newBody.Kids = append(newBody.Kids, copyK.Kids...)
				}
				unrolled := &Node{Kind: NFor, Name: n.Name, Step: n.Step * partialFactor,
					Prov: n.Prov | FromUnroll | FromPreMainPost,
					Kids: []*Node{n.Kids[0], n.Kids[1], newBody}}
				seq.Kids[i] = unrolled
				ctx.Cover("c2.loop.unroll")
				ctx.Cover("c2.loop.premainpost")
				ctx.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LinePreMainPost, "PreMainPost %s", ctx.Fn.Key())
				ctx.EmitBehaviorf(profile.FlagTraceLoopOpts, profile.LineUnroll, "Unroll %d", partialFactor)
				if err := ctx.Record(Event{Pass: "loop", Behavior: profile.BPreMainPost,
					Detail: ctx.Fn.Key(), Prov: unrolled.Prov}); err != nil {
					failed = err
					return
				}
				failed = ctx.Record(Event{Pass: "loop", Behavior: profile.BUnroll,
					Detail: ctx.Fn.Key(), Prov: unrolled.Prov})
				if failed != nil {
					return
				}
			}
		}
	})
	return failed
}

// provOf returns the provenance union of a subtree.
func provOf(n *Node) Prov {
	var p Prov
	n.Walk(func(m *Node) bool { p |= m.Prov; return true })
	return p
}
