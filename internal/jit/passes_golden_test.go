package jit

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/coverage"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// lowerWork lowers T.work from a program snippet, returning a fresh
// compilation context wired to a live machine env.
func lowerWork(t *testing.T, src string) (*Context, *vm.Machine) {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	img, err := bytecode.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(img, vm.Config{})
	f, err := LowerProgramFunc(p, "T.work")
	if err != nil {
		t.Fatal(err)
	}
	rec := profile.NewRecorder(profile.DefaultFlags())
	return &Context{Fn: f, Tier: vm.TierC2, Log: rec, Cov: coverage.NewTracker(), Env: m}, m
}

const workTemplate = `
class T {
  int f;
  static int sf;
  static void main() {
    T t = new T();
    print(t.work(1));
  }
  int work(int i) {
    BODY
  }
  static int add(int x, int y) { return x + y; }
  synchronized int locked(int x) { return x + this.f; }
}
`

func work(body string) string {
	return strings.Replace(workTemplate, "BODY", body, 1)
}

func TestGoldenFullUnroll(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int acc = 0;
    for (int k = 0; k < 3; k += 1) {
      acc = acc + k;
    }
    return acc;
  `))
	if err := passLoopUnroll(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if strings.Contains(out, "for k") {
		t.Errorf("loop not fully unrolled:\n%s", out)
	}
	// Three copies, each substituting k = 0, 1, 2.
	for _, want := range []string{"const 0", "const 1", "const 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing unrolled constant %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "<unroll>") {
		t.Errorf("missing unroll provenance:\n%s", out)
	}
	if ctx.Count(profile.BUnroll) != 1 {
		t.Errorf("unroll count = %d", ctx.Count(profile.BUnroll))
	}
}

func TestGoldenPartialUnroll(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int acc = 0;
    for (int k = 0; k < 32; k += 1) {
      acc = acc + k;
    }
    return acc;
  `))
	if err := passLoopUnroll(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if !strings.Contains(out, "for k step 4") {
		t.Errorf("loop not partially unrolled by 4:\n%s", out)
	}
	if ctx.Count(profile.BPreMainPost) != 1 {
		t.Error("missing pre/main/post event")
	}
}

func TestGoldenUnrollRespectsBodyCap(t *testing.T) {
	// A body larger than loopBodyNodeCap must not unroll.
	var sb strings.Builder
	sb.WriteString("int acc = 0;\nfor (int k = 0; k < 4; k += 1) {\n")
	for i := 0; i < 40; i++ {
		sb.WriteString("  acc = acc + k + 1;\n")
	}
	sb.WriteString("}\nreturn acc;\n")
	ctx, _ := lowerWork(t, work(sb.String()))
	if err := passLoopUnroll(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Count(profile.BUnroll) != 0 {
		t.Error("oversized body was unrolled")
	}
}

func TestGoldenPeel(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int acc = 0;
    for (int k = 0; k < 9; k += 1) {
      if (k == 0) {
        acc = acc + 100;
      }
      acc = acc + k;
    }
    return acc;
  `))
	if err := passLoopPeel(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if !strings.Contains(out, "<peel>") {
		t.Errorf("missing peel provenance:\n%s", out)
	}
	if ctx.Count(profile.BPeel) != 1 {
		t.Errorf("peel count = %d", ctx.Count(profile.BPeel))
	}
}

func TestGoldenUnswitch(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int acc = 0;
    boolean flag = i > 2;
    for (int k = 0; k < 40; k += 1) {
      if (flag) {
        acc = acc + k;
      } else {
        acc = acc - k;
      }
    }
    return acc;
  `))
	if err := passLoopUnswitch(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	// Two loop twins under the hoisted test.
	if strings.Count(out, "for ") != 2 {
		t.Errorf("expected two loop twins:\n%s", out)
	}
	if ctx.Count(profile.BUnswitch) != 1 {
		t.Errorf("unswitch count = %d", ctx.Count(profile.BUnswitch))
	}
}

func TestGoldenLockElisionAndScalarReplace(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    T tmp = new T();
    synchronized (tmp) {
      tmp.f = i;
    }
    return tmp.f;
  `))
	if err := passEscapeAnalysis(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Escape["tmp"] != NoEscape {
		t.Fatalf("tmp classified %v, want NoEscape", ctx.Escape["tmp"])
	}
	if err := passLockElide(ctx); err != nil {
		t.Fatal(err)
	}
	if err := passScalarReplace(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if strings.Contains(out, "sync") {
		t.Errorf("lock not elided:\n%s", out)
	}
	if strings.Contains(out, "new T") {
		t.Errorf("allocation not scalar-replaced:\n%s", out)
	}
	if !strings.Contains(out, "tmp$f") {
		t.Errorf("missing scalar field local:\n%s", out)
	}
}

func TestGoldenEscapeStates(t *testing.T) {
	src := `
class T {
  int f;
  static int sf;
  static T sfT;
  static void main() {
    T t = new T();
    print(t.work(1));
  }
  int work(int i) {
    T a = new T();
    T b = new T();
    T c = new T();
    a.f = 1;
    int y = b.probe();
    T.sfT = c;
    return a.f + y;
  }
  int probe() { return 1; }
}
`
	ctx, _ := lowerWork(t, src)
	if err := passEscapeAnalysis(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Escape["a"] != NoEscape {
		t.Errorf("a = %v, want NoEscape", ctx.Escape["a"])
	}
	if ctx.Escape["b"] != ArgEscape {
		t.Errorf("b = %v, want ArgEscape (receiver use)", ctx.Escape["b"])
	}
	if ctx.Escape["c"] != GlobalEscape {
		t.Errorf("c = %v, want GlobalEscape (stored to a static)", ctx.Escape["c"])
	}
}

func TestGoldenNestedLockElim(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int acc = 0;
    synchronized (this) {
      synchronized (this) {
        acc = i;
      }
    }
    return acc;
  `))
	if err := passNestedLocks(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if strings.Count(out, "sync") != 1 {
		t.Errorf("inner nested lock not removed:\n%s", out)
	}
}

func TestGoldenCoarsen(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int acc = 0;
    synchronized (this) {
      acc = acc + 1;
    }
    synchronized (this) {
      acc = acc + 2;
    }
    synchronized (this) {
      acc = acc + 3;
    }
    return acc;
  `))
	if err := passLockCoarsen(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if strings.Count(out, "sync") != 1 {
		t.Errorf("regions not coarsened into one:\n%s", out)
	}
	if !strings.Contains(out, "<coarsen>") {
		t.Errorf("missing coarsen provenance:\n%s", out)
	}
}

func TestGoldenCoarsenDifferentMonitorsUntouched(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    T other = new T();
    int acc = 0;
    synchronized (this) {
      acc = acc + 1;
    }
    synchronized (other) {
      acc = acc + 2;
    }
    return acc;
  `))
	if err := passLockCoarsen(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Count(profile.BLockCoarsen) != 0 {
		t.Error("coarsened across distinct monitors")
	}
}

func TestGoldenGVNAndAlgebra(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int a = i * 31 + 7;
    int b = i * 31 + 7;
    int c = a + 0;
    return a + b + c;
  `))
	if err := passGVN(ctx); err != nil {
		t.Fatal(err)
	}
	if err := passAlgebra(ctx, "c2"); err != nil {
		t.Fatal(err)
	}
	if ctx.Count(profile.BGVN) != 1 {
		t.Errorf("GVN count = %d", ctx.Count(profile.BGVN))
	}
	if ctx.Count(profile.BAlgebraic) == 0 {
		t.Error("no algebraic rewrites")
	}
	out := Dump(ctx.Fn)
	if !strings.Contains(out, "<gvn>") {
		t.Errorf("missing gvn provenance:\n%s", out)
	}
}

func TestGoldenRSEWindowStopsAtThrowingStatement(t *testing.T) {
	// The intermediate call can throw: the earlier store must survive
	// (a handler in a caller... in this language, same-method try could
	// observe it).
	ctx, _ := lowerWork(t, work(`
    int a = 0;
    a = 5;
    int z = T.add(i, 1);
    a = z;
    return a;
  `))
	if err := passRSE(ctx, "c2"); err != nil {
		t.Fatal(err)
	}
	if ctx.Count(profile.BRedundantStore) != 0 {
		t.Error("RSE crossed a potentially-throwing statement")
	}
}

func TestGoldenDCE(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int dead = i * 999;
    if (3 > 5) {
      T.sf = 1;
    }
    return i;
  `))
	// Fold the constant condition first, then DCE.
	if err := passAlgebra(ctx, "c2"); err != nil {
		t.Fatal(err)
	}
	if err := passDCE(ctx, "c2"); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if strings.Contains(out, "dead") {
		t.Errorf("dead local survived:\n%s", out)
	}
	if strings.Contains(out, "putstatic") {
		t.Errorf("dead branch survived:\n%s", out)
	}
	if ctx.Count(profile.BDCE) < 2 {
		t.Errorf("DCE count = %d", ctx.Count(profile.BDCE))
	}
}

func TestGoldenDereflect(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int a = reflect_invoke("T", "add", null, i, 2);
    int b = reflect_get("T", "sf", null);
    return a + b;
  `))
	if err := passDereflect(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if strings.Contains(out, "reflect_call") || strings.Contains(out, "reflect_get") {
		t.Errorf("reflection survived:\n%s", out)
	}
	if !strings.Contains(out, "<dereflect>") {
		t.Errorf("missing dereflect provenance:\n%s", out)
	}
	// De-reflection is unlogged (§5.1): no behavior counts.
	for b := 0; b < profile.NumBehaviors; b++ {
		if ctx.Counts[b] != 0 {
			t.Errorf("behavior %v counted for dereflect", profile.Behavior(b))
		}
	}
	if len(ctx.Events) != 2 {
		t.Errorf("events = %d, want 2 white-box dereflect events", len(ctx.Events))
	}
}

func TestGoldenTrapInsertion(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int r = i;
    if (i > 5000) {
      r = r * 2;
    }
    return r;
  `))
	if err := passTraps(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if !strings.Contains(out, "uncommon_trap") {
		t.Errorf("no trap inserted:\n%s", out)
	}
}

func TestGoldenTrapSkippedOnRecompile(t *testing.T) {
	ctx, m := lowerWork(t, work(`
    int r = i;
    if (i > 5000) {
      r = r * 2;
    }
    return r;
  `))
	m.InvalidateCode("T.work") // simulate a prior deopt
	if err := passTraps(ctx); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(Dump(ctx.Fn), "uncommon_trap") {
		t.Error("speculation repeated after deopt")
	}
	if ctx.Count(profile.BDeoptRecompile) != 1 {
		t.Error("missing recompile event")
	}
}

func TestGoldenAutoboxLocal(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    Integer bx = Integer.valueOf(i + 1);
    int a = bx.intValue();
    int b = bx.intValue();
    return a + b;
  `))
	if err := passAutobox(ctx); err != nil {
		t.Fatal(err)
	}
	out := Dump(ctx.Fn)
	if strings.Contains(out, "box") && !strings.Contains(out, "autobox") {
		t.Errorf("boxing survived:\n%s", out)
	}
	if ctx.Count(profile.BAutoboxElim) == 0 {
		t.Error("no autobox events")
	}
}

func TestDumpReadable(t *testing.T) {
	ctx, _ := lowerWork(t, work(`
    int acc = 0;
    synchronized (this) {
      acc = i + this.f;
    }
    return acc;
  `))
	out := Dump(ctx.Fn)
	for _, want := range []string{"func T.work", "decl int acc", "sync", "getfield .f", "return"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
