// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation, each regenerating its artifact over
// the simulated substrate at benchmark-sized budgets, plus ablation
// benchmarks for the design choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-budget artifacts are produced by `go run ./cmd/experiments
// -all`; the benchmarks here use experiments.QuickBudget so the suite
// stays minutes-scale while exercising identical code paths.
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/experiments"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

// benchOut prints an artifact once (first iteration) so `go test -bench`
// output doubles as a miniature EXPERIMENTS report.
func benchOut(b *testing.B, i int) io.Writer {
	if i == 0 && testing.Verbose() {
		return &prefixWriter{b: b}
	}
	return io.Discard
}

type prefixWriter struct{ b *testing.B }

func (w *prefixWriter) Write(p []byte) (int, error) {
	w.b.Log("\n" + strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

func quick() experiments.Budget { return experiments.QuickBudget() }

// --- Table benchmarks ---

func BenchmarkTable2Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(benchOut(b, i))
	}
}

func BenchmarkTable3Versions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(benchOut(b, i))
	}
}

func BenchmarkTable4Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(benchOut(b, i))
	}
}

func BenchmarkTable5Mutators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(benchOut(b, i), quick())
	}
}

func BenchmarkTable6Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table6(benchOut(b, i), quick())
	}
}

// --- Figure benchmarks ---

func BenchmarkFigure1Curve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure1(benchOut(b, i), quick())
	}
}

func BenchmarkFigure2Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(benchOut(b, i), quick())
	}
}

func BenchmarkFigure3Distances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3(benchOut(b, i), quick())
	}
}

func BenchmarkFigure4Variants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure4(benchOut(b, i), quick())
	}
}

func BenchmarkFigure5aTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5a(benchOut(b, i), quick())
	}
}

func BenchmarkFigure5bOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5b(benchOut(b, i), quick())
	}
}

// --- Substrate micro-benchmarks ---

func benchSeed() *lang.Program {
	return lang.MustParse(corpus.MotivatingSeed)
}

// BenchmarkSubstrateInterpreter measures the pure interpreter on the
// motivating seed (the reference-semantics engine).
func BenchmarkSubstrateInterpreter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := jvm.Run(lang.CloneProgram(benchSeed()), jvm.Reference(), jvm.Options{PureInterpreter: true})
		if err != nil || r.Crashed() {
			b.Fatal(err, r.Result.Crash)
		}
	}
}

// BenchmarkSubstrateJIT measures the same program with eager C2
// compilation (bug-free) — the compile+optimized-execute path.
func BenchmarkSubstrateJIT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := jvm.Run(lang.CloneProgram(benchSeed()), jvm.Reference(), jvm.Options{
			ForceCompile: true, Bugs: []*buginject.Bug{},
		})
		if err != nil || r.Crashed() {
			b.Fatal(err, r.Result.Crash)
		}
	}
}

// BenchmarkMutationRound measures one guided mutate+check round (no
// execution): the fuzzer-side cost of Algorithm 1's inner loop.
func BenchmarkMutationRound(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	muts := core.AllMutators()
	seed := benchSeed()
	if err := lang.Check(seed); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := lang.CloneProgram(seed)
		locs := lang.Statements(p)
		loc := locs[rng.Intn(len(locs))]
		m := muts[rng.Intn(len(muts))]
		if !m.Applicable(loc) {
			continue
		}
		if _, err := m.Apply(p, loc, rng); err != nil {
			continue
		}
		if err := lang.Check(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOBVExtraction measures profile-log grepping (the guidance
// hot path).
func BenchmarkOBVExtraction(b *testing.B) {
	r, err := jvm.Run(lang.CloneProgram(benchSeed()), jvm.Reference(), jvm.Options{
		Flags: profile.DefaultFlags(), ForceCompile: true, Bugs: []*buginject.Bug{},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = profile.ExtractOBV(r.Log)
	}
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// BenchmarkAblationDeltaVsSum contrasts the paper's Euclidean increment
// (Formula 2) against the rejected plain-sum scheme on an imbalanced
// OBV pair (§3.4's rationale: the sum is dominated by frequent
// behaviors like inlining).
func BenchmarkAblationDeltaVsSum(b *testing.B) {
	var parent, child profile.OBV
	parent[profile.BInline] = 100
	child[profile.BInline] = 200
	child[profile.BUnswitch] = 2 // rare behavior: 1 -> 2
	parent[profile.BUnswitch] = 1
	var delta, sum float64
	for i := 0; i < b.N; i++ {
		delta = profile.Delta(parent, child)
		sum = profile.SumIncrement(parent, child)
	}
	b.ReportMetric(delta, "delta")
	b.ReportMetric(sum, "sum")
	if i := 0; i == 0 && testing.Verbose() {
		b.Logf("Δ=%.2f (normalized emphasis) vs sum=%.0f (inlining-dominated)", delta, sum)
	}
}

// BenchmarkAblationGuidedVsUnguided runs the same seeds guided and
// unguided and reports the Δ medians (Figure 4's MopFuzzer vs _g at
// benchmark scale).
func BenchmarkAblationGuidedVsUnguided(b *testing.B) {
	seeds := corpus.DefaultPool(4, 2)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	for i := 0; i < b.N; i++ {
		for variant, mk := range map[string]func(jvm.Spec, *coverage.Tracker) *baselines.MopFuzzerTool{
			"guided": baselines.NewMopFuzzer, "unguided": baselines.NewMopFuzzerG,
		} {
			tool := mk(target, nil)
			tool.Cfg.DisableBugs = true
			tool.Cfg.DiffSpecs = nil
			tool.Cfg.MaxIterations = 15
			var deltas []float64
			for si, seed := range seeds {
				fr, err := tool.FuzzSeed(seed.Name, seed.Parse(), int64(si+1))
				if err != nil {
					b.Fatal(err)
				}
				deltas = append(deltas, fr.FinalDelta)
			}
			med := median(deltas)
			if i == 0 && testing.Verbose() {
				b.Logf("%s median Δ = %.1f", variant, med)
			}
		}
	}
}

// BenchmarkAblationFixedVsRandomMP contrasts fixed-MP nesting against
// random statement selection (Figure 4's MopFuzzer vs _r).
func BenchmarkAblationFixedVsRandomMP(b *testing.B) {
	seeds := corpus.DefaultPool(4, 3)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	for i := 0; i < b.N; i++ {
		for variant, mk := range map[string]func(jvm.Spec, *coverage.Tracker) *baselines.MopFuzzerTool{
			"fixed-mp": baselines.NewMopFuzzer, "random-mp": baselines.NewMopFuzzerR,
		} {
			tool := mk(target, nil)
			tool.Cfg.DisableBugs = true
			tool.Cfg.DiffSpecs = nil
			tool.Cfg.MaxIterations = 15
			var deltas []float64
			for si, seed := range seeds {
				fr, err := tool.FuzzSeed(seed.Name, seed.Parse(), int64(si+1))
				if err != nil {
					b.Fatal(err)
				}
				deltas = append(deltas, fr.FinalDelta)
			}
			if i == 0 && testing.Verbose() {
				b.Logf("%s median Δ = %.1f", variant, median(deltas))
			}
		}
	}
}

// BenchmarkAblationMutatorSets contrasts the 13 canonical mutators
// against the extended set with alternative implementations (the
// paper's §3.2 future-work extension).
func BenchmarkAblationMutatorSets(b *testing.B) {
	seeds := corpus.DefaultPool(3, 4)
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}
	for i := 0; i < b.N; i++ {
		for _, extended := range []bool{false, true} {
			cfg := core.DefaultConfig(target)
			cfg.ExtendedMutators = extended
			cfg.DisableBugs = true
			cfg.DiffSpecs = nil
			cfg.MaxIterations = 12
			var deltas []float64
			for si, seed := range seeds {
				cfg.Seed = int64(si + 1)
				fr, err := core.NewFuzzer(cfg).FuzzSeed(seed.Name, seed.Parse())
				if err != nil {
					b.Fatal(err)
				}
				deltas = append(deltas, fr.FinalDelta)
			}
			if i == 0 && testing.Verbose() {
				b.Logf("extended=%v median Δ = %.1f", extended, median(deltas))
			}
		}
	}
}

// BenchmarkAblationEagerVsTieredCompile contrasts -Xcomp-style eager
// compilation against threshold-based tiering on the substrate.
func BenchmarkAblationEagerVsTieredCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, eager := range []bool{true, false} {
			r, err := jvm.Run(lang.CloneProgram(benchSeed()), jvm.Reference(), jvm.Options{
				ForceCompile: eager, Bugs: []*buginject.Bug{},
			})
			if err != nil || r.Crashed() {
				b.Fatal(err)
			}
		}
	}
}

// --- Campaign-engine and OBV fast-path benchmarks ---

// benchCampaignCfg is the shared campaign workload for the engine
// benchmarks: the standard corpus fuzzed against the reference target
// with the production fuzzer configuration.
func benchCampaignCfg(structured bool, workers int) core.CampaignConfig {
	target := jvm.Reference()
	fcfg := core.DefaultConfig(target)
	fcfg.Seed = 1
	fcfg.StructuredOBV = structured
	return core.CampaignConfig{
		Seeds:   corpus.DefaultPool(10, 1),
		Budget:  250,
		Targets: []jvm.Spec{target},
		Fuzz:    fcfg,
		Seed:    1,
		Workers: workers,
	}
}

// BenchmarkCampaignSequential is the single-goroutine baseline with the
// structured OBV fast path and campaign caches on.
func BenchmarkCampaignSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunCampaign(benchCampaignCfg(true, 1))
	}
}

// BenchmarkCampaignParallel4 shards the same workload across 4 workers;
// results are byte-identical to sequential (pinned by the core tests),
// wall-clock speedup tracks available cores.
func BenchmarkCampaignParallel4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunCampaign(benchCampaignCfg(true, 4))
	}
}

// BenchmarkCampaignLegacyOBV runs the reference profile path: full log
// text construction plus regex extraction per execution.
func BenchmarkCampaignLegacyOBV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunCampaign(benchCampaignCfg(false, 1))
	}
}

// BenchmarkOBVExtractRegex times the reference oracle alone: regex
// rules over a real execution's profile log.
func BenchmarkOBVExtractRegex(b *testing.B) {
	r, err := jvm.Run(lang.CloneProgram(benchSeed()), jvm.Reference(), jvm.Options{
		Flags: profile.DefaultFlags(), ForceCompile: true, Bugs: []*buginject.Bug{},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obvSink = profile.ExtractOBV(r.Log)
	}
}

// BenchmarkOBVLegacyExecution / BenchmarkOBVStructuredExecution compare
// the end-to-end per-execution cost of the two profile paths.
func BenchmarkOBVLegacyExecution(b *testing.B) {
	benchExecution(b, false)
}

func BenchmarkOBVStructuredExecution(b *testing.B) {
	benchExecution(b, true)
}

func benchExecution(b *testing.B, structured bool) {
	for i := 0; i < b.N; i++ {
		r, err := jvm.Run(lang.CloneProgram(benchSeed()), jvm.Reference(), jvm.Options{
			Flags: profile.DefaultFlags(), ForceCompile: true, Bugs: []*buginject.Bug{},
			StructuredOBV: structured,
		})
		if err != nil {
			b.Fatal(err)
		}
		obvSink = r.OBV
	}
}

var obvSink profile.OBV

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

var _ = fmt.Sprintf // keep fmt for debug edits
