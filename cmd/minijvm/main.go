// Command minijvm runs a mini-Java source file on one of the simulated
// JVMs, mirroring a `java` invocation with diagnostic flags.
//
// Usage:
//
//	minijvm -jvm openjdk-17 -flags PrintInlining,TraceLoopOpts prog.mj
//	minijvm -jvm openj9-11 -xcomp -disasm prog.mj
//	minijvm -interp prog.mj        # pure interpreter (reference output)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/buginject"
	"repro/internal/bytecode"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

func main() {
	jvmFlag := flag.String("jvm", "openjdk-mainline", "target JVM: openjdk-{8,11,17,21,mainline} or openj9-{...}")
	flagsFlag := flag.String("flags", "", "comma-separated diagnostic flags (or 'all')")
	xcomp := flag.Bool("xcomp", true, "force JIT compilation of every invoked method")
	interp := flag.Bool("interp", false, "pure interpreter (no JIT, no seeded bugs)")
	noBugs := flag.Bool("nobugs", false, "disable the version's seeded bug set")
	disasm := flag.Bool("disasm", false, "print the compiled bytecode before running")
	showLog := flag.Bool("log", true, "print the profile log after the run")
	showOBV := flag.Bool("obv", false, "print the extracted optimization behavior vector")
	diff := flag.Bool("diff", false, "differential mode: run on every simulated build and compare outputs")
	compileOnly := flag.String("compileonly", "", "JIT-compile only this method (Class.method)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minijvm [flags] <file.mj>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := lang.Check(prog); err != nil {
		fatal(err)
	}

	spec, err := parseSpec(*jvmFlag)
	if err != nil {
		fatal(err)
	}

	if *disasm {
		img, err := bytecode.Compile(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bytecode.DisassembleImage(img))
		fmt.Println()
	}

	opt := jvm.Options{
		ForceCompile:    *xcomp,
		PureInterpreter: *interp,
		CompileOnly:     *compileOnly,
	}
	if *noBugs {
		opt.Bugs = []*buginject.Bug{}
	}
	switch {
	case *flagsFlag == "all":
		opt.Flags = profile.DefaultFlags()
	case *flagsFlag != "":
		opt.Flags = profile.FlagSet{}
		for _, f := range strings.Split(*flagsFlag, ",") {
			opt.Flags[profile.Flag(strings.TrimSpace(f))] = true
		}
	}

	if *diff {
		runDiff(prog, opt)
		return
	}

	res, err := jvm.Run(prog, spec, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("== %s ==\n", spec.Name())
	fmt.Print(res.Result.OutputString())
	fmt.Println()
	if res.Crashed() {
		fmt.Println(res.HsErr())
	}
	if *showLog && res.Log != "" {
		fmt.Println("-- profile log --")
		fmt.Println(res.Log)
	}
	if *showOBV {
		fmt.Println("-- OBV --")
		fmt.Println(res.OBV)
	}
	if res.Crashed() {
		os.Exit(1)
	}
}

// runDiff executes the program on every simulated build and reports the
// distinct output groups (the paper's miscompilation oracle).
func runDiff(prog *lang.Program, opt jvm.Options) {
	d, err := jvm.RunDifferential(prog, jvm.AllSpecs(), opt)
	if err != nil {
		fatal(err)
	}
	for _, r := range d.Results {
		status := r.Result.OutputString()
		if r.Crashed() {
			status = "CRASH " + r.Result.Crash.BugID
		}
		fmt.Printf("  %-18s %s\n", r.Spec.Name(), strings.ReplaceAll(status, "\n", " | "))
	}
	if d.Inconsistent() {
		fmt.Printf("INCONSISTENT: %d output groups\n", len(d.Groups))
		for _, b := range d.TriggeredBugs() {
			fmt.Printf("  triggered: %s (%s, %s)\n", b.ID, b.Impl, b.Component)
		}
		os.Exit(1)
	}
	fmt.Println("all builds agree")
}

func parseSpec(s string) (jvm.Spec, error) {
	impl := buginject.HotSpot
	rest := s
	switch {
	case strings.HasPrefix(s, "openjdk-"):
		rest = strings.TrimPrefix(s, "openjdk-")
	case strings.HasPrefix(s, "openj9-"):
		impl = buginject.OpenJ9
		rest = strings.TrimPrefix(s, "openj9-")
	default:
		return jvm.Spec{}, fmt.Errorf("unknown JVM %q", s)
	}
	v := 0
	switch rest {
	case "8":
		v = 8
	case "11":
		v = 11
	case "17":
		v = 17
	case "21":
		v = 21
	case "mainline", "23":
		v = 23
	default:
		return jvm.Spec{}, fmt.Errorf("unknown version %q", rest)
	}
	return jvm.Spec{Impl: impl, Version: v}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minijvm:", err)
	os.Exit(1)
}
