// Command minijvm runs a mini-Java source file on one of the simulated
// JVMs, mirroring a `java` invocation with diagnostic flags.
//
// Usage:
//
//	minijvm -jvm openjdk-17 -flags PrintInlining,TraceLoopOpts prog.mj
//	minijvm -jvm openj9-11 -xcomp -disasm prog.mj
//	minijvm -interp prog.mj        # pure interpreter (reference output)
//	minijvm -exec-json < req.json  # machine-readable one-shot execution
//	minijvm -exec-serve            # persistent batched execution server
//
// Exit codes are distinct per failure domain so drivers can classify
// without parsing output:
//
//	0  success (all builds agree, in -diff mode)
//	1  program-level fatal error (unreadable file, parse/type error)
//	2  usage error (also the Go runtime's uncaught-panic status)
//	3  simulated JVM crash (the crash-oracle outcome)
//	4  differential inconsistency (the miscompilation-oracle outcome)
//
// In -exec-json mode one execution request is read from stdin and the
// outcome — including crashes, timeouts, and heap exhaustion — is
// written to stdout as versioned JSON (see internal/exec); only an
// unusable request exits non-zero. -exec-serve is the warm-pool
// variant: it announces itself with a hello line, then answers NDJSON
// batch requests (N executions per round trip) until stdin closes,
// holding a compile cache across the whole stream and self-reporting
// heap telemetry so the parent can recycle it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/buginject"
	"repro/internal/bytecode"
	"repro/internal/exec"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

// Exit codes (see the package comment). exitUsage doubles as the Go
// runtime's own uncaught-panic status; the exec-json parent
// disambiguates via the "panic:" marker on stderr.
const (
	exitFatal        = 1
	exitUsage        = 2
	exitCrash        = 3
	exitInconsistent = 4
)

func main() {
	jvmFlag := flag.String("jvm", "openjdk-mainline", "target JVM: openjdk-{8,11,17,21,mainline} or openj9-{...}")
	flagsFlag := flag.String("flags", "", "comma-separated diagnostic flags (or 'all')")
	xcomp := flag.Bool("xcomp", true, "force JIT compilation of every invoked method")
	interp := flag.Bool("interp", false, "pure interpreter (no JIT, no seeded bugs)")
	noBugs := flag.Bool("nobugs", false, "disable the version's seeded bug set")
	disasm := flag.Bool("disasm", false, "print the compiled bytecode before running")
	showLog := flag.Bool("log", true, "print the profile log after the run")
	showOBV := flag.Bool("obv", false, "print the extracted optimization behavior vector")
	diff := flag.Bool("diff", false, "differential mode: run on every simulated build and compare outputs")
	compileOnly := flag.String("compileonly", "", "JIT-compile only this method (Class.method)")
	execJSON := flag.Bool("exec-json", false, "read one execution request (JSON) from stdin, write the outcome to stdout")
	execServe := flag.Bool("exec-serve", false, "long-lived server mode: answer NDJSON execution batches on stdin until EOF (the warm-pool child)")
	flag.Parse()

	if *execServe {
		// Warm-pool child: hello handshake, then batch frames until the
		// parent closes stdin. Buffered stdout is flushed per frame by
		// ServeStream; panics are NOT recovered (see -exec-json below).
		out := bufio.NewWriter(os.Stdout)
		err := exec.ServeStream(os.Stdin, out)
		out.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "minijvm:", err)
			os.Exit(exec.ExitRequestError)
		}
		return
	}

	if *execJSON {
		// Machine-readable mode: the request carries spec, source, and
		// options; every other flag is ignored. Substrate panics are NOT
		// recovered — an escaped panic is exactly the signal the parent's
		// process-level containment classifies.
		if err := exec.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "minijvm:", err)
			os.Exit(exec.ExitRequestError)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minijvm [flags] <file.mj>")
		os.Exit(exitUsage)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := lang.Check(prog); err != nil {
		fatal(err)
	}

	spec, err := jvm.ParseSpec(*jvmFlag)
	if err != nil {
		fatal(err)
	}

	if *disasm {
		img, err := bytecode.Compile(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bytecode.DisassembleImage(img))
		fmt.Println()
	}

	opt := jvm.Options{
		ForceCompile:    *xcomp,
		PureInterpreter: *interp,
		CompileOnly:     *compileOnly,
	}
	if *noBugs {
		opt.Bugs = []*buginject.Bug{}
	}
	switch {
	case *flagsFlag == "all":
		opt.Flags = profile.DefaultFlags()
	case *flagsFlag != "":
		opt.Flags = profile.FlagSet{}
		for _, f := range strings.Split(*flagsFlag, ",") {
			opt.Flags[profile.Flag(strings.TrimSpace(f))] = true
		}
	}

	if *diff {
		runDiff(prog, opt)
		return
	}

	res, err := jvm.Run(prog, spec, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("== %s ==\n", spec.Name())
	fmt.Print(res.Result.OutputString())
	fmt.Println()
	if res.Crashed() {
		fmt.Println(res.HsErr())
	}
	if *showLog && res.Log != "" {
		fmt.Println("-- profile log --")
		fmt.Println(res.Log)
	}
	if *showOBV {
		fmt.Println("-- OBV --")
		fmt.Println(res.OBV)
	}
	if res.Crashed() {
		os.Exit(exitCrash)
	}
}

// runDiff executes the program on every simulated build and reports the
// distinct output groups (the paper's miscompilation oracle).
func runDiff(prog *lang.Program, opt jvm.Options) {
	d, err := jvm.RunDifferential(prog, jvm.AllSpecs(), opt)
	if err != nil {
		fatal(err)
	}
	for _, r := range d.Results {
		status := r.Result.OutputString()
		if r.Crashed() {
			status = "CRASH " + r.Result.Crash.BugID
		}
		fmt.Printf("  %-18s %s\n", r.Spec.Name(), strings.ReplaceAll(status, "\n", " | "))
	}
	if d.Inconsistent() {
		fmt.Printf("INCONSISTENT: %d output groups\n", len(d.Groups))
		for _, b := range d.TriggeredBugs() {
			fmt.Printf("  triggered: %s (%s, %s)\n", b.ID, b.Impl, b.Component)
		}
		os.Exit(exitInconsistent)
	}
	fmt.Println("all builds agree")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minijvm:", err)
	os.Exit(exitFatal)
}
