// Command experiments regenerates the paper's tables and figures over
// the simulated substrate.
//
// Usage:
//
//	experiments -all
//	experiments -table 6 -budget 2000 -seeds 40
//	experiments -figure 5a
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exec"
	"repro/internal/experiments"
)

func main() {
	tableFlag := flag.String("table", "", "regenerate one table: 2, 3, 4, 5, or 6")
	figureFlag := flag.String("figure", "", "regenerate one figure: 1, 2, 3, 4, 5a, or 5b")
	all := flag.Bool("all", false, "regenerate every table and figure")
	recall := flag.Bool("recall", false, "run the ground-truth recall campaign (extra artifact)")
	planRecall := flag.Bool("plan-recall", false, "run the recall campaign once per -plan-fuzz mode (off/minimal/full) and report the plan-only bugs")
	scheduleRecall := flag.Bool("schedule-recall", false, "run the recall campaign per scheduling leg (-schedule off/power x plan-fuzz off/full) and report executions-to-detection")
	generatorRecall := flag.Bool("generator-recall", false, "run the recall campaign per generator set (randprog-only vs template/style) and report the generator-only bugs")
	budgetFlag := flag.Int("budget", 0, "execution budget per tool (default per experiment)")
	seedsFlag := flag.Int("seeds", 0, "seed pool size (default per experiment)")
	seedFlag := flag.Int64("seed", 1, "campaign random seed")
	benchJSON := flag.String("bench-json", "", "measure campaign throughput (sequential vs parallel vs legacy OBV), the scaling matrix, and backend exec overhead; write the JSON report here")
	benchWorkers := flag.Int("bench-workers", 4, "worker count for the parallel leg of -bench-json")
	backend := flag.String("backend", "inprocess", "execution backend: inprocess, subprocess (one minijvm child per execution), or pool (warm children, batched protocol)")
	minijvmPath := flag.String("minijvm", "", "minijvm binary for -backend subprocess/pool (default: $MINIJVM, then $PATH)")
	childTimeout := flag.Duration("child-timeout", 10*time.Second, "per-execution watchdog for -backend subprocess/pool (0 = no watchdog)")
	poolChildren := flag.Int("pool-children", 0, "max warm children for -backend pool (0 = GOMAXPROCS)")
	poolRecycle := flag.Int64("pool-recycle-after", 0, "recycle a pool child after this many executions (0 = default 512)")
	poolMaxHeapMB := flag.Uint64("pool-max-heap-mb", 0, "recycle a pool child whose self-reported heap reaches this many MiB (0 = default 256)")
	flag.Parse()

	tuning := exec.PoolTuning{
		Children:          *poolChildren,
		RecycleAfter:      *poolRecycle,
		MaxChildHeapBytes: *poolMaxHeapMB << 20,
	}
	executor, err := exec.FromFlags(*backend, *minijvmPath, *childTimeout, tuning)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer exec.CloseExecutor(executor)

	budget := experiments.DefaultBudget()
	budget.Executor = executor
	if *budgetFlag > 0 {
		budget.Executions = *budgetFlag
	}
	if *seedsFlag > 0 {
		budget.Seeds = *seedsFlag
	}
	budget.Seed = *seedFlag

	w := os.Stdout
	sep := func() {
		fmt.Fprint(w, "\n================================================================\n\n")
	}

	ran := false
	runTable := func(id string) {
		ran = true
		switch id {
		case "2":
			experiments.Table2(w)
		case "3":
			experiments.Table3(w)
		case "4":
			experiments.Table4(w)
		case "5":
			experiments.Table5(w, budget)
		case "6":
			experiments.Table6(w, budget)
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", id)
			os.Exit(2)
		}
	}
	runFigure := func(id string) {
		ran = true
		switch id {
		case "1":
			experiments.Figure1(w, budget)
		case "2":
			experiments.Figure2(w, budget)
		case "3":
			experiments.Figure3(w, budget)
		case "4":
			experiments.Figure4(w, budget)
		case "5a":
			experiments.Figure5a(w, budget)
		case "5b":
			experiments.Figure5b(w, budget)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", id)
			os.Exit(2)
		}
	}

	if *all {
		for _, t := range []string{"2", "3", "4", "5", "6"} {
			runTable(t)
			sep()
		}
		for _, f := range []string{"1", "2", "3", "4", "5a", "5b"} {
			runFigure(f)
			sep()
		}
		return
	}
	if *tableFlag != "" {
		runTable(*tableFlag)
	}
	if *figureFlag != "" {
		if ran {
			sep()
		}
		runFigure(*figureFlag)
	}
	if *recall {
		if ran {
			sep()
		}
		ran = true
		experiments.Recall(w, budget)
	}
	if *planRecall {
		if ran {
			sep()
		}
		ran = true
		experiments.PlanRecall(w, budget)
	}
	if *scheduleRecall {
		if ran {
			sep()
		}
		ran = true
		experiments.ScheduleRecall(w, budget)
	}
	if *generatorRecall {
		if ran {
			sep()
		}
		ran = true
		experiments.GeneratorRecall(w, budget)
	}
	if *benchJSON != "" {
		ran = true
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		rep, err := experiments.WriteBenchJSON(f, budget, *benchWorkers, experiments.BenchOptions{
			MinijvmPath:  *minijvmPath,
			ChildTimeout: *childTimeout,
			Pool:         tuning,
		})
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "bench: %.0f execs/sec sequential, %.0f execs/sec with %d workers (%.2fx), OBV extraction %.0f -> %.0f ns/op (%.1fx); report written to %s\n",
			rep.SequentialExecsPerSec, rep.ParallelExecsPerSec, rep.Workers, rep.CampaignSpeedup,
			rep.OBVRegexNsPerOp, rep.OBVStructuredNsPerOp, rep.OBVSpeedup, *benchJSON)
		experiments.ScalingTable(w, rep)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
