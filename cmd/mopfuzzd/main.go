// Command mopfuzzd is the fuzzing-as-a-service daemon: a job scheduler
// dispatching MOP-guided campaigns onto a bounded runner pool, an HTTP
// JSON API for submitting jobs and streaming findings, Prometheus-style
// live metrics, and graceful drain — SIGTERM stops accepting jobs,
// checkpoints running campaigns, flushes triage stores, and exits so a
// restart resumes every in-flight job from disk.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	stateDir := flag.String("state-dir", "mopfuzzd-state", "persistent state directory (jobs, checkpoints, triage stores)")
	runners := flag.Int("runners", 1, "max concurrently running campaigns")
	backend := flag.String("backend", "inprocess", "default execution backend: inprocess or subprocess")
	minijvm := flag.String("minijvm", "", "path to the minijvm binary (subprocess backend)")
	childTimeout := flag.Duration("child-timeout", 10*time.Second, "wall-clock timeout per subprocess execution")
	execTimeout := flag.Duration("exec-timeout", 0, "wall-clock watchdog per seed task (0 = step fuel only)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "min executions between campaign checkpoints (<=0 = every task)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mopfuzzd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "mopfuzzd: ", log.LstdFlags)

	sched, err := service.NewScheduler(service.Config{
		Dir:             *stateDir,
		Runners:         *runners,
		Backend:         *backend,
		MinijvmPath:     *minijvm,
		ChildTimeout:    *childTimeout,
		ExecTimeout:     *execTimeout,
		CheckpointEvery: *checkpointEvery,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatalf("open state dir %s: %v", *stateDir, err)
	}

	// SIGINT/SIGTERM cancels the context: the drain signal.
	ctx, stop := harness.ShutdownContext(context.Background())
	defer stop()

	sched.Start(ctx)

	srv := &http.Server{Addr: *listen, Handler: service.NewServer(sched).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (state %s, %d runner(s), backend %s)", *listen, *stateDir, *runners, *backend)

	select {
	case <-ctx.Done():
		logger.Printf("shutdown signal: draining (no new jobs; checkpointing running campaigns)")
	case err := <-errc:
		logger.Fatalf("http server: %v", err)
	}

	// Drain: every runner flushes a final campaign checkpoint and closes
	// its triage store before Wait returns; a restarted daemon re-queues
	// the interrupted jobs and resumes them from those checkpoints.
	sched.Wait()
	logger.Printf("drain complete: all campaigns checkpointed, triage stores flushed")

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
}
