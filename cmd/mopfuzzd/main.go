// Command mopfuzzd is the fuzzing-as-a-service daemon: a job scheduler
// dispatching MOP-guided campaigns onto a bounded runner pool, an HTTP
// JSON API for submitting jobs and streaming findings, Prometheus-style
// live metrics, and graceful drain — SIGTERM stops accepting jobs,
// checkpoints running campaigns, flushes triage stores, and exits so a
// restart resumes every in-flight job from disk.
//
// Fleet modes scale it horizontally:
//
//	-mode coordinator  the full daemon plus the fleet endpoints
//	                   (/fleet/enroll, /fleet/heartbeat, /fleet/complete);
//	                   queued jobs are sharded across enrolled workers
//	                   under time-bounded leases and fall back to the
//	                   local runner pool when no worker is live.
//	-mode worker       a campaign executor only: it enrolls with
//	                   -coordinator, accepts one assignment at a time on
//	                   /work, heartbeats checkpoint handoffs, and holds
//	                   no job state of its own.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/service"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	stateDir := flag.String("state-dir", "mopfuzzd-state", "persistent state directory (jobs, checkpoints, triage stores)")
	runners := flag.Int("runners", 1, "max concurrently running campaigns")
	backend := flag.String("backend", "inprocess", "default execution backend: inprocess, subprocess, or pool")
	minijvm := flag.String("minijvm", "", "path to the minijvm binary (subprocess/pool backends)")
	childTimeout := flag.Duration("child-timeout", 10*time.Second, "wall-clock timeout per subprocess execution")
	poolChildren := flag.Int("pool-children", 0, "pool backend: max warm children (0 = GOMAXPROCS)")
	poolRecycleAfter := flag.Int64("pool-recycle-after", 0, "pool backend: recycle a child after this many executions (0 = default 512)")
	poolMaxHeapMB := flag.Uint64("pool-max-heap-mb", 0, "pool backend: recycle a child whose self-reported heap reaches this many MiB (0 = default 256)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	execTimeout := flag.Duration("exec-timeout", 0, "wall-clock watchdog per seed task (0 = step fuel only)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "min executions between campaign checkpoints (<=0 = every task)")
	drainTimeout := flag.Duration("drain-timeout", 0, "bound on the drain phase at shutdown (0 = wait for checkpoints indefinitely)")

	mode := flag.String("mode", "", "fleet mode: empty (standalone), coordinator, or worker")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "coordinator: assignment lease duration")
	heartbeatEvery := flag.Duration("heartbeat-every", 0, "coordinator: worker heartbeat cadence (0 = lease-ttl/3)")
	coordinator := flag.String("coordinator", "", "worker: coordinator base URL (e.g. http://host:8080)")
	workerID := flag.String("worker-id", "", "worker: unique fleet ID (default: host:port of -worker-addr)")
	workerAddr := flag.String("worker-addr", "", "worker: base URL the coordinator reaches this worker at (default: http://<listen>)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mopfuzzd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "mopfuzzd: ", log.LstdFlags)

	pool := exec.PoolTuning{
		Children:          *poolChildren,
		RecycleAfter:      *poolRecycleAfter,
		MaxChildHeapBytes: *poolMaxHeapMB << 20,
	}

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux; serve it on its own listener so profiling never
		// shares the API surface.
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM cancels the context: the drain signal.
	ctx, stop := harness.ShutdownContext(context.Background())
	defer stop()

	switch *mode {
	case "worker":
		runWorker(ctx, logger, workerOpts{
			listen:       *listen,
			coordinator:  *coordinator,
			id:           *workerID,
			addr:         *workerAddr,
			dir:          *stateDir,
			backend:      *backend,
			minijvm:      *minijvm,
			childTimeout: *childTimeout,
			pool:         pool,
			drainTimeout: *drainTimeout,
		})
		return
	case "", "coordinator":
		// The full daemon below; coordinator mode adds the fleet layer.
	default:
		fmt.Fprintf(os.Stderr, "mopfuzzd: unknown -mode %q (want coordinator or worker)\n", *mode)
		os.Exit(2)
	}

	sched, err := service.NewScheduler(service.Config{
		Dir:             *stateDir,
		Runners:         *runners,
		Backend:         *backend,
		MinijvmPath:     *minijvm,
		ChildTimeout:    *childTimeout,
		Pool:            pool,
		ExecTimeout:     *execTimeout,
		CheckpointEvery: *checkpointEvery,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatalf("open state dir %s: %v", *stateDir, err)
	}

	apiSrv := service.NewServer(sched)
	mux := http.NewServeMux()
	mux.Handle("/", apiSrv.Handler())
	if *mode == "coordinator" {
		coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
			Sched:          sched,
			LeaseTTL:       *leaseTTL,
			HeartbeatEvery: *heartbeatEvery,
			Logf:           logger.Printf,
		})
		coord.Mount(mux)
		sched.SetRemote(coord)
		logger.Printf("fleet coordinator enabled (lease ttl %s)", *leaseTTL)
	}

	sched.Start(ctx)

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (state %s, %d runner(s), backend %s)", *listen, *stateDir, *runners, *backend)

	select {
	case <-ctx.Done():
		logger.Printf("shutdown signal: draining (no new jobs; checkpointing running campaigns)")
	case err := <-errc:
		logger.Fatalf("http server: %v", err)
	}

	// Drain: every runner flushes a final campaign checkpoint and closes
	// its triage store before Wait returns; a restarted daemon re-queues
	// the interrupted jobs and resumes them from those checkpoints.
	// -drain-timeout bounds the wait so a wedged campaign cannot hold the
	// process hostage — the checkpoint machinery is crash-safe either way.
	if waitBounded(sched.Wait, *drainTimeout) {
		logger.Printf("drain complete: all campaigns checkpointed, triage stores flushed")
	} else {
		logger.Printf("drain timeout %s elapsed: exiting with campaigns still settling (checkpoints are crash-safe)", *drainTimeout)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
}

// waitBounded runs wait, giving up after d (0 = no bound). Reports
// whether wait finished.
func waitBounded(wait func(), d time.Duration) bool {
	if d <= 0 {
		wait()
		return true
	}
	done := make(chan struct{})
	go func() { wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

type workerOpts struct {
	listen       string
	coordinator  string
	id           string
	addr         string
	dir          string
	backend      string
	minijvm      string
	childTimeout time.Duration
	pool         exec.PoolTuning
	drainTimeout time.Duration
}

// runWorker is the -mode worker main loop.
func runWorker(ctx context.Context, logger *log.Logger, o workerOpts) {
	if o.coordinator == "" {
		fmt.Fprintln(os.Stderr, "mopfuzzd: -mode worker requires -coordinator")
		os.Exit(2)
	}
	if o.addr == "" {
		host, port, err := net.SplitHostPort(o.listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mopfuzzd: cannot derive -worker-addr from -listen %q: %v\n", o.listen, err)
			os.Exit(2)
		}
		if host == "" {
			host = "127.0.0.1"
		}
		o.addr = fmt.Sprintf("http://%s", net.JoinHostPort(host, port))
	}
	if o.id == "" {
		o.id = o.addr
	}

	worker, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:           o.id,
		Coordinator:  o.coordinator,
		Addr:         o.addr,
		Dir:          o.dir,
		Backend:      o.backend,
		MinijvmPath:  o.minijvm,
		ChildTimeout: o.childTimeout,
		Pool:         o.pool,
		Logf:         logger.Printf,
	})
	if err != nil {
		logger.Fatalf("worker: %v", err)
	}

	mux := http.NewServeMux()
	worker.Mount(mux)
	srv := &http.Server{
		Addr:              o.listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	worker.Start(ctx)
	logger.Printf("worker %s listening on %s (coordinator %s, scratch %s)", o.id, o.listen, o.coordinator, o.dir)

	select {
	case <-ctx.Done():
		logger.Printf("shutdown signal: draining worker (running assignment completes as interrupted)")
	case err := <-errc:
		logger.Fatalf("http server: %v", err)
	}

	if waitBounded(worker.Wait, o.drainTimeout) {
		logger.Printf("worker drained")
	} else {
		logger.Printf("drain timeout %s elapsed: exiting", o.drainTimeout)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
}
