// Command triage inspects and maintains the persistent findings stores
// written by mopfuzzer -triage-dir:
//
//	# human-readable summary of a store
//	triage report -store ./bugs
//
//	# machine-readable report for CI assertions
//	triage report -store ./bugs -json -o report.json
//
//	# collapse the append-only log (long campaigns leave sighting trails)
//	triage compact -store ./bugs
//
//	# fold stores from parallel or sharded campaigns into one corpus
//	triage merge -into ./bugs ./bugs-shard1 ./bugs-shard2
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/triage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		cmdReport(os.Args[2:])
	case "compact":
		cmdCompact(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: triage <command> [flags]

commands:
  report   render a store as a human-readable or JSON report
  compact  rewrite a store's log to one record per signature
  merge    fold one or more source stores into a destination store`)
	os.Exit(2)
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	dir := fs.String("store", "", "triage store directory (required)")
	asJSON := fs.Bool("json", false, "emit the JSON report instead of text")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Parse(args)
	s := open(*dir)
	defer s.Close()
	rep := triage.BuildReport(s)
	var payload []byte
	if *asJSON {
		// WriteJSON is the same serialization the service daemon's
		// /jobs/{id}/findings endpoint emits, so CLI and API share one
		// machine format.
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			fatal(err)
		}
		payload = buf.Bytes()
	} else {
		payload = []byte(rep.Text())
	}
	if *out == "" {
		os.Stdout.Write(payload)
		return
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fatal(err)
	}
}

func cmdCompact(args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("store", "", "triage store directory (required)")
	fs.Parse(args)
	s := open(*dir)
	defer s.Close()
	if err := s.Compact(); err != nil {
		fatal(err)
	}
	fmt.Printf("compacted %s: %d signature(s)\n", *dir, s.Len())
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	into := fs.String("into", "", "destination store directory (required)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("merge: no source stores given"))
	}
	dst := open(*into)
	defer dst.Close()
	total := 0
	for _, srcDir := range fs.Args() {
		src := open(srcDir)
		added, err := dst.Merge(src)
		src.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("merged %s: %d new signature(s)\n", srcDir, added)
		total += added
	}
	fmt.Printf("store %s now holds %d signature(s) (%d added)\n", *into, dst.Len(), total)
}

func open(dir string) *triage.Store {
	if dir == "" {
		fatal(fmt.Errorf("a store directory is required"))
	}
	s, err := triage.Open(dir)
	if err != nil {
		fatal(err)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "triage:", err)
	os.Exit(1)
}
