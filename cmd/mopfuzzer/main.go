// Command mopfuzzer runs the fuzzer, mirroring the paper artifact's CLI:
//
//	# fuzz a generated corpus against a target, reporting findings
//	mopfuzzer -jdk openjdk-17 -seeds 20 -budget 2000
//
//	# fuzz one seed file with guidance and print the final mutant
//	mopfuzzer -jdk openjdk-mainline -case seed.mj -enable_profile_guide=true
//
//	# reduce a bug-triggering case before reporting
//	mopfuzzer -jdk openjdk-17 -case seed.mj -reduce
//
//	# run every execution in an isolated minijvm child process
//	mopfuzzer -jdk openjdk-17 -backend subprocess -minijvm ./minijvm
//
//	# same isolation, but over a warm child pool with batched requests
//	mopfuzzer -jdk openjdk-17 -backend pool -minijvm ./minijvm
//
//	# profile a campaign (feed the next perf PR)
//	mopfuzzer -jdk openjdk-17 -budget 2000 -cpuprofile cpu.out -memprofile mem.out
//
//	# deduplicate + minimize findings into a persistent triage store
//	mopfuzzer -jdk openjdk-17 -seeds 20 -budget 2000 -triage-dir ./bugs -report report.json
//
//	# spend budget by scored (seed, plan-mode) energy instead of cursor order
//	mopfuzzer -jdk openjdk-17 -seeds 20 -budget 2000 -schedule power
//
//	# score a corpus and print its maximally-diverse subset as JSON
//	mopfuzzer -seeds 30 -distill -score-cache scores.json
//
//	# refresh the corpus between rounds with template + style generators
//	mopfuzzer -jdk openjdk-17 -seeds 20 -budget 2000 -generators randprog,template,style
//
//	# target specific pass interactions; minimized triage findings feed template mining
//	mopfuzzer -jdk openjdk-17 -budget 2000 -styles boxing-loop,coarsen-store -triage-dir ./bugs
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/generate"
	"repro/internal/harness"
	"repro/internal/jit"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/reduce"
	"repro/internal/triage"
)

func main() {
	jdk := flag.String("jdk", "openjdk-17", "target JVM (openjdk-{8,11,17,21,mainline}, openj9-...)")
	caseFile := flag.String("case", "", "fuzz a single seed file instead of the generated corpus")
	seeds := flag.Int("seeds", 20, "generated corpus size")
	budget := flag.Int("budget", 1000, "total execution budget for corpus campaigns")
	iters := flag.Int("iterations", 50, "mutations per seed (MAX Iterations)")
	guide := flag.Bool("enable_profile_guide", true, "profile-data-based mutator weighting")
	fixedMP := flag.Bool("fixed_mp", true, "iterate on a fixed mutation point (false = MopFuzzer_r)")
	seed := flag.Int64("seed", 1, "random seed")
	doReduce := flag.Bool("reduce", false, "reduce bug-triggering mutants before reporting")
	extended := flag.Bool("extended", false, "include the alternative evoking-mutator implementations")
	dumpMutant := flag.Bool("dump", false, "print the final mutant source")
	checkpoint := flag.String("checkpoint", "", "periodically snapshot campaign state to this JSON file")
	resume := flag.String("resume", "", "restore campaign state from this checkpoint file before fuzzing")
	execTimeout := flag.Duration("exec-timeout", 0, "wall-clock watchdog per seed task (0 = step fuel only)")
	heapLimit := flag.Int64("heap-limit", 0, "per-execution heap-allocation cap in units (0 = VM default, <0 = uncapped)")
	quarantineDir := flag.String("quarantine-dir", "", "persist pathological mutants (panic/hang/heap-exhaustion triggers) here")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel seed-task workers (1 = sequential; results are identical either way)")
	fastOBV := flag.Bool("fast-obv", true, "structured OBV fast path (count behaviors in the JIT instead of regex-scanning profile logs)")
	planFuzz := flag.String("plan-fuzz", "off", "compilation-plan fuzzing: off (fixed pipeline), minimal (mandatory passes, fuzzed order), or full (fuzzed pass selection, order, and loop rounds)")
	schedule := flag.String("schedule", "off", "seed-budget policy: off (cursor order, byte-identical to prior releases) or power (energy-weighted (seed, plan-mode) arms)")
	doDistill := flag.Bool("distill", false, "score the corpus, print the distillation report JSON, and exit without fuzzing")
	scoreCache := flag.String("score-cache", "", "persist seed feature vectors to this JSON file (resumes and re-runs skip re-profiling)")
	backend := flag.String("backend", "inprocess", "execution backend: inprocess (shared failure domain, fastest), subprocess (one minijvm child per execution), or pool (warm serve-mode children, batched)")
	minijvmPath := flag.String("minijvm", "", "minijvm binary for -backend subprocess/pool (default: $MINIJVM, then $PATH)")
	childTimeout := flag.Duration("child-timeout", 10*time.Second, "per-execution watchdog for -backend subprocess/pool (0 = no watchdog)")
	poolChildren := flag.Int("pool-children", 0, "max warm children for -backend pool (0 = GOMAXPROCS)")
	poolRecycle := flag.Int64("pool-recycle-after", 0, "recycle a pool child after this many executions (0 = default 512)")
	poolMaxHeapMB := flag.Uint64("pool-max-heap-mb", 0, "recycle a pool child whose self-reported heap reaches this many MiB (0 = default 256)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file for the whole run")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	triageDir := flag.String("triage-dir", "", "deduplicate findings by root-cause signature, reduce each new one once, and persist the corpus in this store directory")
	reportPath := flag.String("report", "", "write a JSON triage report to this file after the campaign (requires -triage-dir)")
	generators := flag.String("generators", "randprog", "comma-separated corpus generators refreshing the pool between rounds: randprog (baseline, byte-identical alone), template (typed holes in seeds + minimized triage findings), style (composition styles targeting pass interactions)")
	stylesFlag := flag.String("styles", "", "comma-separated composition styles for the style generator (empty = all registered); naming a style implies -generators=...,style")
	verbose := flag.Bool("v", false, "verbose campaign summary: parse-cache hit rates and generator emission counts")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mopfuzzer:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mopfuzzer:", err)
			}
		}()
	}

	spec, err := jvm.ParseSpec(*jdk)
	if err != nil {
		fatal(err)
	}
	executor, err := exec.FromFlags(*backend, *minijvmPath, *childTimeout, exec.PoolTuning{
		Children:          *poolChildren,
		RecycleAfter:      *poolRecycle,
		MaxChildHeapBytes: *poolMaxHeapMB << 20,
	})
	if err != nil {
		fatal(err)
	}
	defer exec.CloseExecutor(executor)
	cfg := core.DefaultConfig(spec)
	cfg.Executor = executor
	cfg.MaxIterations = *iters
	cfg.Guided = *guide
	cfg.FixedMP = *fixedMP
	cfg.Seed = *seed
	cfg.ExtendedMutators = *extended
	cfg.MaxHeapUnits = *heapLimit
	cfg.StructuredOBV = *fastOBV
	cfg.PlanFuzz, err = jit.ParsePlanMode(*planFuzz)
	if err != nil {
		fatal(err)
	}
	schedMode, err := corpus.ParseScheduleMode(*schedule)
	if err != nil {
		fatal(err)
	}
	genList, styleList := splitList(*generators), splitList(*stylesFlag)
	if _, err := generate.Normalize(genList, styleList); err != nil {
		fatal(err)
	}

	if *caseFile != "" {
		fuzzOne(*caseFile, cfg, *doReduce, *dumpMutant)
		return
	}

	// SIGINT/SIGTERM cancel the campaign between seed tasks; the
	// harness flushes a final checkpoint and we print the partial
	// result below before exiting.
	ctx, stop := harness.ShutdownContext(context.Background())
	defer stop()
	hcfg := harness.Config{
		ExecTimeout:    *execTimeout,
		QuarantineDir:  *quarantineDir,
		CheckpointPath: *checkpoint,
		ResumePath:     *resume,
		MaxRetries:     2,
		Backoff:        100 * time.Millisecond,
	}
	if hcfg.CheckpointPath == "" && hcfg.ResumePath != "" {
		// Resuming without an explicit -checkpoint keeps snapshotting to
		// the same file, so repeated interrupt/resume cycles just work.
		hcfg.CheckpointPath = hcfg.ResumePath
	}

	// The triage pipeline is strictly additive: without -triage-dir no
	// worker exists, OnFinding stays nil, and campaign output is
	// byte-identical to previous releases.
	if *reportPath != "" && *triageDir == "" {
		fatal(fmt.Errorf("-report requires -triage-dir"))
	}
	var tstore *triage.Store
	var tworker *triage.Worker
	if *triageDir != "" {
		tstore, err = triage.Open(*triageDir)
		if err != nil {
			fatal(err)
		}
		tworker, err = triage.NewWorker(triage.WorkerConfig{Store: tstore, Executor: executor})
		if err != nil {
			fatal(err)
		}
		tworker.Start(ctx)
	}

	pool := corpus.DefaultPool(*seeds, *seed)
	if *doDistill {
		// Score-and-report mode: one profiling dry-run per seed, the
		// distillation report on stdout, no fuzzing. The same report a
		// daemon serves on POST /corpus/distill.
		_, rep, err := core.DistillSeeds(ctx, pool, executor, *scoreCache, 0, 0)
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	// Minimized triage findings feed template mining: bugs already found
	// breed the scenarios that hunt for their neighbors.
	var extras []string
	if tstore != nil {
		tstore.MinimizedPrograms(func(key, program string) bool {
			extras = append(extras, program)
			return true
		})
	}
	parsed := corpus.NewParseCache()
	ccfg := core.CampaignConfig{
		Seeds:          pool,
		Budget:         *budget,
		Targets:        []jvm.Spec{spec},
		Fuzz:           cfg,
		Seed:           *seed,
		Workers:        *workers,
		Executor:       executor,
		SeedSchedule:   schedMode,
		ScoreCachePath: *scoreCache,
		ParseCache:     parsed,
		Generators:     genList,
		Styles:         styleList,
		TemplateExtras: extras,
	}
	if tworker != nil {
		ccfg.OnFinding = func(f core.Finding) { tworker.Submit(f) }
	}
	var genSeeds int
	if *verbose {
		ccfg.OnProgress = func(p core.Progress) { genSeeds = p.GeneratedSeeds }
	}
	res, err := core.RunCampaignContext(ctx, ccfg, hcfg)
	if err != nil {
		fatal(err)
	}
	status := ""
	if res.Resumed {
		status += " (resumed)"
	}
	if res.Interrupted {
		status += " (interrupted — partial result)"
	}
	fmt.Printf("campaign: %d executions, %d seeds fuzzed, %d unique bugs%s\n",
		res.Executions, res.SeedsFuzzed, len(res.Findings), status)
	if n := len(res.SeedErrors); n > 0 {
		fmt.Printf("  %d seed error(s):\n", n)
		for _, se := range res.SeedErrors {
			fmt.Printf("    round %d %s: %s\n", se.Round, se.SeedName, se.Err)
		}
	}
	for _, f := range res.Findings {
		gen := ""
		if f.GeneratorID != "" {
			gen = ", seed by " + f.GeneratorID
		}
		fmt.Printf("  [%6d exec] %-14s %-26s %s (%s, via %s oracle%s)\n",
			f.AtExecution, f.Bug.ID, f.Bug.Component, f.Bug.Kind, f.Target.Name(), f.Oracle, gen)
		if *doReduce && f.Program != nil {
			pipe := &reduce.Pipeline{Executor: executor}
			reduced := pipe.ReduceFinding(context.Background(), f.Program, f.Bug, f.Target)
			fmt.Printf("           reduced %d -> %d statements\n", reduced.StmtsBefore, reduced.StmtsAfter)
			if *dumpMutant {
				fmt.Println(indent(lang.Format(reduced.Program)))
			}
		}
	}
	for _, f := range res.Faults {
		q := f.QuarantinePath
		if q == "" {
			q = "<memory>"
		}
		fmt.Printf("  fault  %-14s %-10s seed %s round %d, retries %d, quarantine %s\n",
			f.Class, f.Component, f.SeedName, f.Round, f.Retries, q)
		if *dumpMutant {
			fmt.Println(indent(f.HsErrReport(spec.Name())))
		}
	}
	if res.SkippedQuarantined > 0 {
		fmt.Printf("  %d task(s) skipped (quarantined seeds)\n", res.SkippedQuarantined)
	}
	if *verbose {
		st := parsed.Stats()
		total := st.Hits + st.Misses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(st.Hits) / float64(total)
		}
		fmt.Printf("parse cache: %d hit(s), %d miss(es) (%.1f%% hit rate), %d evicted, %d resident\n",
			st.Hits, st.Misses, rate, st.Evictions, st.Size)
		if genSeeds > 0 {
			fmt.Printf("generators: %d seed(s) emitted into the pool\n", genSeeds)
		}
		if len(extras) > 0 {
			fmt.Printf("generators: %d minimized triage finding(s) mined for templates\n", len(extras))
		}
	}
	if tworker != nil {
		// Drain the triage queue (reductions may still be running), then
		// report what the store now holds.
		if err := tworker.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mopfuzzer: triage store flush:", err)
		}
		st := tworker.Stats()
		fmt.Printf("triage: %d finding(s) -> %d new signature(s), %d duplicate(s), %d reduced, %d quarantined (store: %s)\n",
			st.Received, st.Novel, st.Duplicates, st.Reduced, st.Quarantined, tstore.Dir())
		rep := triage.BuildReport(tstore)
		fmt.Print(rep.Text())
		if *reportPath != "" {
			data, err := rep.JSON()
			if err == nil {
				err = os.WriteFile(*reportPath, data, 0o644)
			}
			if err != nil {
				fatal(fmt.Errorf("writing triage report: %w", err))
			}
			fmt.Printf("triage: JSON report written to %s\n", *reportPath)
		}
		if err := tstore.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mopfuzzer: triage store close:", err)
		}
	}
	if res.CheckpointErrors > 0 {
		fmt.Fprintf(os.Stderr, "mopfuzzer: warning: %d checkpoint write(s) failed (last: %s) — -resume may replay completed work\n",
			res.CheckpointErrors, res.LastCheckpointError)
	}
	if res.Interrupted && *checkpoint != "" {
		fmt.Printf("campaign: checkpoint flushed to %s — continue with -resume %s\n", *checkpoint, *checkpoint)
	}
}

func fuzzOne(path string, cfg core.Config, doReduce, dump bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	f := core.NewFuzzer(cfg)
	res, err := f.FuzzSeed(path, prog)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fuzzed %s: %d executions, MP=stmt#%d, final Δ(seed)=%.1f\n",
		path, res.Executions, res.MPID, res.FinalDelta)
	for _, r := range res.Records {
		status := ""
		if r.Skipped {
			status = " (skipped)"
		}
		if r.CrashBugID != "" {
			status = " CRASH " + r.CrashBugID
		}
		fmt.Printf("  iter %2d %-30s Δ=%6.1f w=%5.2f%s\n", r.Iter, r.Mutator, r.Delta, r.Weight, status)
	}
	for _, fd := range res.Findings {
		fmt.Printf("finding: %s in %s via %s oracle\n", fd.Bug.ID, fd.Bug.Component, fd.Oracle)
		if doReduce {
			pipe := &reduce.Pipeline{Executor: cfg.Executor}
			reduced := pipe.ReduceFinding(context.Background(), res.Final, fd.Bug, cfg.Target)
			fmt.Printf("reduced %d -> %d statements in %d rounds\n",
				reduced.StmtsBefore, reduced.StmtsAfter, reduced.Rounds)
			if dump {
				fmt.Println(indent(lang.Format(reduced.Program)))
			}
			return
		}
	}
	if dump {
		fmt.Println("-- final mutant --")
		fmt.Println(indent(lang.Format(res.Final)))
	}
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mopfuzzer:", err)
	os.Exit(1)
}
