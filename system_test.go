package repro

import (
	"testing"

	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/reduce"
)

// TestSystemEndToEnd drives the complete pipeline the paper describes:
// seed -> guided iterative mutation -> crash -> reduction -> the reduced
// case still reproduces on exactly the affected versions. This is the
// repository's "does the whole story hold together" test.
func TestSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign system test")
	}
	target := jvm.Spec{Impl: buginject.HotSpot, Version: 17}

	// 1. Fuzz seeds until a crash finding appears.
	var finding *core.BugFinding
	var mutant *lang.Program
	for s := int64(0); s < 10 && finding == nil; s++ {
		cfg := core.DefaultConfig(target)
		cfg.Seed = 100 + s
		cfg.DiffSpecs = nil
		f := core.NewFuzzer(cfg)
		seed := corpus.DefaultPool(1, 100+s)[0]
		fr, err := f.FuzzSeed(seed.Name, seed.Parse())
		if err != nil {
			t.Fatal(err)
		}
		for i := range fr.Findings {
			if fr.Findings[i].Oracle == "crash" {
				finding = &fr.Findings[i]
				mutant = fr.Final
			}
		}
	}
	if finding == nil {
		t.Fatal("no crash found across 10 guided seeds")
	}
	bug := finding.Bug
	t.Logf("found %s (%s) via %v", bug.ID, bug.Component, finding.Mutators)

	// 2. The finding's mutator set reflects iterated mutation: the
	// paper's central claim is that interaction bugs need several
	// mutators applied to the same point.
	if len(finding.Mutators) < 2 {
		t.Errorf("crash after %d mutators; interaction bugs should need several", len(finding.Mutators))
	}

	// 3. Reduce while the same bug keeps firing.
	keep := func(cand *lang.Program) bool {
		r, err := jvm.Run(lang.CloneProgram(cand), target, jvm.Options{
			ForceCompile: true, MaxSteps: 2_000_000,
		})
		if err != nil {
			return false
		}
		return r.Crashed() && r.Result.Crash.BugID == bug.ID
	}
	if !keep(mutant) {
		t.Fatal("final mutant does not reproduce the crash standalone")
	}
	red := reduce.Reduce(mutant, keep, reduce.Options{MaxRounds: 4})
	if red.StmtsAfter >= red.StmtsBefore {
		t.Errorf("reduction made no progress: %d -> %d", red.StmtsBefore, red.StmtsAfter)
	}
	if !keep(red.Program) {
		t.Fatal("reduced case lost the trigger")
	}
	t.Logf("reduced %d -> %d statements", red.StmtsBefore, red.StmtsAfter)

	// 4. Version confirmation: the reduced case crashes only on versions
	// carrying the bug (modulo other bugs it may also trip).
	for _, v := range []int{8, 11, 17, 21, 23} {
		r, err := jvm.Run(lang.CloneProgram(red.Program), jvm.Spec{Impl: buginject.HotSpot, Version: v},
			jvm.Options{ForceCompile: true, MaxSteps: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		hits := r.Crashed() && r.Result.Crash.BugID == bug.ID
		if bug.In(v) && !hits && !r.Crashed() {
			t.Errorf("jdk%d carries %s but the reduced case does not crash", v, bug.ID)
		}
		if !bug.In(v) && hits {
			t.Errorf("jdk%d does not carry %s but crashed with it", v, bug.ID)
		}
	}
}

// TestSystemMiscompileEndToEnd drives the differential branch of the
// pipeline on a known miscompiling shape.
func TestSystemMiscompileEndToEnd(t *testing.T) {
	src := `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 1500; i += 1) { total = total + t.work(i); }
    print(total);
    print(t.f);
  }
  int work(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      acc = 7;
      acc = i + k;
      this.f = this.f + acc;
    }
    return acc;
  }
}`
	p := lang.MustParse(src)
	diff, err := jvm.RunDifferential(p, jvm.AllSpecs(), jvm.Options{
		ForceCompile: true, CompileOnly: "T.work",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Inconsistent() {
		t.Fatal("known miscompiling shape not detected")
	}
	// Ground truth must attribute the divergence.
	if len(diff.TriggeredBugs()) == 0 {
		t.Error("divergence with no triggered-bug attribution")
	}
	// The interpreter and the healthy builds agree with each other.
	ref, err := jvm.Run(lang.CloneProgram(p), jvm.Reference(), jvm.Options{PureInterpreter: true})
	if err != nil {
		t.Fatal(err)
	}
	healthyAgree := false
	for out, specs := range diff.Groups {
		if out == ref.Result.OutputString() && len(specs) >= 4 {
			healthyAgree = true
		}
	}
	if !healthyAgree {
		t.Error("no healthy-build group matches the interpreter's output")
	}
}
