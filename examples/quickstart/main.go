// Quickstart: fuzz one seed program with MopFuzzer and inspect what the
// guided loop does — the smallest end-to-end use of the public pieces:
// corpus -> fuzzer -> findings.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/buginject"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/jvm"
	"repro/internal/lang"
)

func main() {
	// 1. A seed shaped like an OpenJDK regression test (paper Listing 2).
	seed := lang.MustParse(corpus.MotivatingSeed)
	fmt.Println("seed program:")
	fmt.Println(lang.Format(seed))

	// 2. Configure MopFuzzer against the simulated OpenJDK 17 with the
	//    paper's defaults: 50 iterations at a fixed mutation point,
	//    profile-data-guided mutator selection.
	cfg := core.DefaultConfig(jvm.Spec{Impl: buginject.HotSpot, Version: 17})
	cfg.Seed = 3 // deterministic run
	fuzzer := core.NewFuzzer(cfg)

	// 3. Run Algorithm 1.
	res, err := fuzzer.FuzzSeed("quickstart", seed)
	if err != nil {
		panic(err)
	}

	fmt.Printf("mutation point: statement #%d\n", res.MPID)
	fmt.Printf("executions:     %d\n", res.Executions)
	fmt.Printf("final Δ(seed):  %.1f\n", res.FinalDelta)
	fmt.Println("\niteration log (mutator, Δ vs parent, weight after update):")
	for _, r := range res.Records {
		note := ""
		if r.Skipped {
			note = "  [skipped]"
		}
		if r.CrashBugID != "" {
			note = "  [JVM CRASHED: " + r.CrashBugID + "]"
		}
		fmt.Printf("  %2d  %-30s Δ=%6.1f  w=%5.2f%s\n", r.Iter, r.Mutator, r.Delta, r.Weight, note)
	}

	if len(res.Findings) == 0 {
		fmt.Println("\nno bug this run — try another -seed; the campaign runner cycles many")
		return
	}
	for _, f := range res.Findings {
		fmt.Printf("\nFOUND %s (%s, %s) via the %s oracle\n",
			f.Bug.ID, f.Bug.Component, f.Bug.Kind, f.Oracle)
		fmt.Printf("  %s\n", f.Bug.Summary)
	}
}
