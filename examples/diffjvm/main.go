// Diffjvm demonstrates the miscompilation oracle: a program whose
// optimized output silently diverges on the JVM versions carrying a
// redundancy-elimination defect. Crashes announce themselves;
// miscompilations only show up when implementations disagree — the
// reason the paper runs every final mutant across ten JVM builds.
//
// Run with: go run ./examples/diffjvm
package main

import (
	"fmt"

	"repro/internal/jvm"
	"repro/internal/lang"
)

// program exercises OpenJ9's Issue-18919 shape: a store inside a small
// loop that fully unrolls; the defective redundancy elimination then
// removes the store that is actually live.
const program = `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 3000; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
    print(t.f);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      acc = 7;
      acc = i + k;
      this.f = this.f + acc;
    }
    return acc;
  }
}
`

func main() {
	prog := lang.MustParse(program)

	// The interpreter defines the truth.
	ref, err := jvm.Run(lang.CloneProgram(prog), jvm.Reference(), jvm.Options{PureInterpreter: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("reference (pure interpreter):", compact(ref.Result.OutputString()))

	// Differential testing across every simulated build.
	diff, err := jvm.RunDifferential(prog, jvm.AllSpecs(), jvm.Options{ForceCompile: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nper-build outputs:")
	for _, r := range diff.Results {
		marker := ""
		if r.Result.OutputString() != ref.Result.OutputString() {
			marker = "   <-- DIVERGES"
		}
		fmt.Printf("  %-18s %s%s\n", r.Spec.Name(), compact(r.Result.OutputString()), marker)
	}

	if !diff.Inconsistent() {
		fmt.Println("\nall builds agree — no miscompilation visible on this input")
		return
	}
	fmt.Printf("\nINCONSISTENT: %d distinct output groups\n", len(diff.Groups))
	for _, b := range diff.TriggeredBugs() {
		fmt.Printf("  ground truth: %s (%s, %s) — %s\n", b.ID, b.Impl, b.Component, b.Summary)
	}
}

func compact(s string) string {
	out := ""
	for _, r := range s {
		if r == '\n' {
			out += " | "
		} else {
			out += string(r)
		}
	}
	return out
}
