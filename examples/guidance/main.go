// Guidance opens up the profile-data channel: it runs one program with
// diagnostic flags on, shows the raw log lines the VM emits, the regex
// rules that count them, the resulting Optimization Behavior Vector,
// and the Δ/weight arithmetic of the paper's Formulas 2 and 3.
//
// Run with: go run ./examples/guidance
package main

import (
	"fmt"

	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/profile"
)

const parentSrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 3000; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
  }
  int foo(int i) {
    int acc = i + this.f;
    return acc;
  }
}
`

// childSrc is parentSrc after two MopFuzzer iterations: a synchronized
// wrap plus an unrollable loop around it.
const childSrc = `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 3000; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
  }
  int foo(int i) {
    int acc = 0;
    for (int u = 0; u < 4; u += 1) {
      synchronized (this) {
        acc = i + this.f;
      }
    }
    synchronized (this) {
      acc = i + this.f;
    }
    return acc;
  }
}
`

func main() {
	run := func(src string) *jvm.ExecResult {
		r, err := jvm.Run(lang.MustParse(src), jvm.Reference(), jvm.Options{
			Flags:        profile.DefaultFlags(),
			ForceCompile: true,
		})
		if err != nil {
			panic(err)
		}
		return r
	}

	parent := run(parentSrc)
	child := run(childSrc)

	fmt.Println("the 15 diagnostic flags passed to the VM:")
	for _, f := range profile.AllFlags() {
		fmt.Println("  -XX:+" + string(f))
	}

	fmt.Println("\nchild mutant's profile log (what the fuzzer actually sees):")
	for _, line := range splitLines(child.Log) {
		fmt.Println("  " + line)
	}

	fmt.Println("\nregex rules -> OBV dimensions:")
	for _, r := range profile.Rules {
		if child.OBV[r.Behavior] > 0 || parent.OBV[r.Behavior] > 0 {
			fmt.Printf("  %-16s /%s/  parent=%d child=%d\n",
				r.Behavior, r.Pattern, parent.OBV[r.Behavior], child.OBV[r.Behavior])
		}
	}

	delta := profile.Delta(parent.OBV, child.OBV)
	fmt.Printf("\nΔ (Formula 2, Euclidean over positive increments) = %.2f\n", delta)
	fmt.Printf("||OBV_c|| = %.2f\n", child.OBV.Norm())
	w := 1.0
	w2 := profile.UpdateWeight(w, parent.OBV, child.OBV)
	fmt.Printf("weight update (Formula 3): w = %.2f -> %.2f\n", w, w2)
	fmt.Printf("\nthe alternative 'plain sum' scheme the paper rejects would give %.0f\n",
		profile.SumIncrement(parent.OBV, child.OBV))
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
