// Crashhunt walks the JDK-8312744 interaction by hand: it builds the
// paper's Listing 3 shape — nested and adjacent locks around a loop —
// runs it on the simulated JDKs, and shows the crash appearing exactly
// on the versions that carry the defect, then reduces the test case.
//
// Run with: go run ./examples/crashhunt
package main

import (
	"fmt"

	"repro/internal/buginject"
	"repro/internal/jvm"
	"repro/internal/lang"
	"repro/internal/reduce"
)

// mutant is the hand-distilled JDK-8312744 trigger: a synchronized
// region inside a small counted loop. The JIT fully unrolls the loop,
// leaving adjacent lock regions that lock coarsening merges — and the
// coarsening-after-unrolling retry path is exactly where the seeded
// defect lives (as in the paper's Listing 3).
const mutant = `
class T {
  int f;
  static void main() {
    T t = new T();
    long total = 0;
    for (int i = 0; i < 3000; i += 1) {
      total = total + t.foo(i);
    }
    print(total);
  }
  int foo(int i) {
    int acc = 0;
    for (int k = 0; k < 4; k += 1) {
      synchronized (this) {
        acc = acc + k + i;
      }
    }
    synchronized (this) {
      acc = acc + this.f;
    }
    return acc;
  }
}
`

func main() {
	prog := lang.MustParse(mutant)

	fmt.Println("running the Listing-3-shaped mutant on every simulated JDK:")
	for _, spec := range jvm.HotSpotLTSAndMainline() {
		res, err := jvm.Run(lang.CloneProgram(prog), spec, jvm.Options{ForceCompile: true})
		if err != nil {
			panic(err)
		}
		status := "ok: " + res.Result.OutputString()
		if res.Crashed() {
			status = "CRASH " + res.Result.Crash.BugID + " in " + res.Result.Crash.Component
		}
		fmt.Printf("  %-18s %s\n", spec.Name(), status)
	}

	// Show the hs_err-style report from the crashing mainline run.
	ref, err := jvm.Run(lang.CloneProgram(prog), jvm.Reference(), jvm.Options{ForceCompile: true})
	if err != nil {
		panic(err)
	}
	if ref.Crashed() {
		fmt.Println("\nhs_err report:")
		fmt.Println(ref.HsErr())
	}

	// The defect needs BOTH the unrolled synchronized loop AND a lock
	// region for coarsening to chew on; removing either ingredient makes
	// the crash vanish — the paper's observation that single mutations
	// do not reproduce interaction bugs.
	fmt.Println("\nreducing while the crash persists:")
	bug := buginject.ByID("JDK-8312744")
	keep := func(cand *lang.Program) bool {
		r, err := jvm.Run(lang.CloneProgram(cand), jvm.Reference(), jvm.Options{ForceCompile: true, MaxSteps: 2_000_000})
		if err != nil {
			return false
		}
		return r.Crashed() && r.Result.Crash.BugID == bug.ID
	}
	red := reduce.Reduce(prog, keep, reduce.Options{})
	fmt.Printf("  %d -> %d statements in %d rounds (%d candidates tested)\n",
		red.StmtsBefore, red.StmtsAfter, red.Rounds, red.TestedCands)
	fmt.Println("\nreduced test case:")
	fmt.Println(lang.Format(red.Program))
}
